// NEON backend for aarch64. Advanced SIMD is mandatory in AArch64, so the
// whole translation unit compiles at the baseline ISA (no function target
// attributes) and the factory never has to probe the CPU — it is gated at
// compile time only.

#include "hdc/kernels/backend.hpp"

#if defined(__aarch64__) || defined(_M_ARM64)
#define H3DFACT_KERNELS_NEON 1
#include <arm_neon.h>

#include <bit>
#include <cstdint>
#endif

namespace h3dfact::hdc::kernels {

#if defined(H3DFACT_KERNELS_NEON)

namespace {

// popcount(a XOR b): 16 bytes per step via vcntq_u8, byte counts widened
// pairwise (u8→u16→u32→u64) into a 64-bit accumulator so no lane can
// saturate regardless of nw.
long long xor_popcount_neon(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t nw) {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t w = 0;
  for (; w + 2 <= nw; w += 2) {
    const uint64x2_t va = vld1q_u64(a + w);
    const uint64x2_t vb = vld1q_u64(b + w);
    const uint8x16_t x = vreinterpretq_u8_u64(veorq_u64(va, vb));
    const uint8x16_t cnt = vcntq_u8(x);
    acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(cnt))));
  }
  long long total = static_cast<long long>(vgetq_lane_u64(acc, 0) +
                                           vgetq_lane_u64(acc, 1));
  for (; w < nw; ++w) total += std::popcount(a[w] ^ b[w]);
  return total;
}

// y[0..n) += a * row[0..n): ±1 int8 rows widened s8→s16→s32, two
// multiply-accumulate lanes of four per step.
void axpy_row_neon(int a, const std::int8_t* row, int* y, std::size_t n) {
  const int32x4_t va = vdupq_n_s32(a);
  std::size_t d = 0;
  for (; d + 8 <= n; d += 8) {
    const int16x8_t r16 = vmovl_s8(vld1_s8(row + d));
    const int32x4_t r_lo = vmovl_s16(vget_low_s16(r16));
    const int32x4_t r_hi = vmovl_s16(vget_high_s16(r16));
    int32x4_t y_lo = vld1q_s32(y + d);
    int32x4_t y_hi = vld1q_s32(y + d + 4);
    y_lo = vmlaq_s32(y_lo, va, r_lo);
    y_hi = vmlaq_s32(y_hi, va, r_hi);
    vst1q_s32(y + d, y_lo);
    vst1q_s32(y + d + 4, y_hi);
  }
  for (; d < n; ++d) y[d] += a * row[d];
}

void similarity_tile_neon(const std::uint64_t* rows, std::size_t row_stride,
                          std::size_t nrows,
                          const std::uint64_t* const* queries, std::size_t nq,
                          std::size_t nw, long long dim, int* sims,
                          std::size_t sim_stride) {
  for (std::size_t q = 0; q < nq; ++q) {
    for (std::size_t i = 0; i < nrows; ++i) {
      const long long disagree =
          xor_popcount_neon(queries[q], rows + i * row_stride, nw);
      sims[i * sim_stride + q] = static_cast<int>(dim - 2 * disagree);
    }
  }
}

void project_tile_neon(const std::int8_t* row, std::size_t dim,
                       const int* coeffs, std::size_t batch, int* scratch) {
  for (std::size_t b = 0; b < batch; ++b) {
    const int c = coeffs[b];
    if (c == 0) continue;
    axpy_row_neon(c, row, scratch + b * dim, dim);
  }
}

constexpr KernelBackend kNeon{
    "neon",          xor_popcount_neon, axpy_row_neon,
    similarity_tile_neon, project_tile_neon,
};

}  // namespace

const KernelBackend* neon_backend() { return &kNeon; }

#else  // !H3DFACT_KERNELS_NEON

const KernelBackend* neon_backend() { return nullptr; }

#endif

}  // namespace h3dfact::hdc::kernels
