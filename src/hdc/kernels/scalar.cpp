// Scalar reference backend. Every other backend must match it bit for bit
// (asserted by the parity suite in tests/test_kernels.cpp); it is also the
// fallback on ISAs without a SIMD backend and the H3DFACT_KERNEL_BACKEND=
// scalar override target for A/B timing.

#include <bit>
#include <cstdint>

#include "hdc/kernels/backend.hpp"

namespace h3dfact::hdc::kernels {

namespace {

long long xor_popcount_scalar(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t nw) {
  long long disagree = 0;
  for (std::size_t w = 0; w < nw; ++w) disagree += std::popcount(a[w] ^ b[w]);
  return disagree;
}

void axpy_row_scalar(int a, const std::int8_t* row, int* y, std::size_t n) {
  for (std::size_t d = 0; d < n; ++d) y[d] += a * row[d];
}

void similarity_tile_scalar(const std::uint64_t* rows, std::size_t row_stride,
                            std::size_t nrows,
                            const std::uint64_t* const* queries,
                            std::size_t nq, std::size_t nw, long long dim,
                            int* sims, std::size_t sim_stride) {
  for (std::size_t q = 0; q < nq; ++q) {
    for (std::size_t i = 0; i < nrows; ++i) {
      const long long disagree =
          xor_popcount_scalar(queries[q], rows + i * row_stride, nw);
      sims[i * sim_stride + q] = static_cast<int>(dim - 2 * disagree);
    }
  }
}

void project_tile_scalar(const std::int8_t* row, std::size_t dim,
                         const int* coeffs, std::size_t batch, int* scratch) {
  for (std::size_t b = 0; b < batch; ++b) {
    const int c = coeffs[b];
    if (c == 0) continue;
    axpy_row_scalar(c, row, scratch + b * dim, dim);
  }
}

constexpr KernelBackend kScalar{
    "scalar",          xor_popcount_scalar, axpy_row_scalar,
    similarity_tile_scalar, project_tile_scalar,
};

}  // namespace

const KernelBackend* scalar_backend() { return &kScalar; }

}  // namespace h3dfact::hdc::kernels
