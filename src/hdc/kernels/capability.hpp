#pragma once
// CPU-capability probing for the kernel policy layer. One plain struct of
// booleans, fillable two ways: probe() reads the real CPU once (cached),
// and tests construct synthetic sets so the policy's capability scoring is
// unit-testable without five kinds of hardware (the HyperStream
// backend/capability.hpp shape). The struct deliberately names only the
// features the backends actually key on — it is a policy input, not a
// general CPUID mirror.

#include <string>

namespace h3dfact::hdc::kernels {

/// The ISA features the kernel backends dispatch on. Defaults are all
/// false so a synthetic set starts from "featureless" and enables exactly
/// what a test wants to model.
struct CpuCapabilities {
  bool sse2 = false;             ///< x86-64 baseline (always true there)
  bool avx2 = false;             ///< 256-bit integer SIMD
  bool avx512f = false;          ///< 512-bit foundation
  bool avx512bw = false;         ///< 512-bit byte/word ops (the LUT popcount)
  bool avx512vpopcntdq = false;  ///< hardware 64-bit lane popcount
  bool neon = false;             ///< aarch64 Advanced SIMD (baseline there)

  /// Human-readable feature list, e.g. "sse2 avx2 avx512f" ("none" when
  /// empty) — what bench/kernels prints at startup next to the selection.
  [[nodiscard]] std::string to_string() const;
};

/// The capabilities of the CPU this process runs on, probed once on first
/// call and cached (the probe itself is cheap but called per dispatch).
[[nodiscard]] const CpuCapabilities& probe();

}  // namespace h3dfact::hdc::kernels
