// KernelPool implementation. The orchestration protocol: a caller that
// wins the exclusive try-lock publishes one job (body + chunk bookkeeping)
// under mutex_, wakes the workers, claims chunks alongside them, and waits
// for the last chunk before retiring the job. Losers of the try-lock run
// their whole range inline — bit-identical by the determinism contract, so
// concurrency never changes results, only wall time.

#include "hdc/kernels/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "util/parse.hpp"

namespace h3dfact::hdc::kernels {

namespace {

// H3DFACT_KERNEL_THREADS resolution: unset/empty/0 means auto (hardware
// concurrency); anything else must strict-parse to a sane executor count.
// Garbage throws by value — a typoed pin must not silently become auto and
// defeat a forced-thread-count CI matrix.
unsigned resolve_env_threads() {
  const char* env = std::getenv("H3DFACT_KERNEL_THREADS");
  if (env != nullptr && *env != '\0') {
    const auto parsed = util::parse_u64(env);
    if (!parsed || *parsed > 4096) {
      std::string msg =
          "H3DFACT_KERNEL_THREADS must be an integer executor count "
          "(0 = auto, max 4096), got: \"";
      msg += env;
      msg += '"';
      throw std::runtime_error(msg);
    }
    if (*parsed != 0) return static_cast<unsigned>(*parsed);
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace

KernelPool& KernelPool::instance() {
  static KernelPool pool;
  return pool;
}

KernelPool::~KernelPool() {
  util::MutexLock lock(exclusive_);
  stop_workers();
}

unsigned KernelPool::threads() {
  const unsigned cached = threads_cached_.load(std::memory_order_acquire);
  if (cached != 0) return cached;
  util::MutexLock lock(exclusive_);
  if (threads_ == 0) {
    threads_ = resolve_env_threads();
    threads_cached_.store(threads_, std::memory_order_release);
  }
  return threads_;
}

void KernelPool::set_threads(unsigned n) {
  util::MutexLock lock(exclusive_);
  stop_workers();
  threads_ = n;  // 0 re-resolves lazily on the next threads() call
  threads_cached_.store(n, std::memory_order_release);
}

void KernelPool::ensure_started() {
  if (threads_ == 0) {
    threads_ = resolve_env_threads();
    threads_cached_.store(threads_, std::memory_order_release);
  }
  const std::size_t want = threads_ > 0 ? threads_ - 1 : 0;
  while (workers_.size() < want) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

void KernelPool::stop_workers() {
  if (workers_.empty()) return;
  {
    util::MutexLock lock(mutex_);
    stopping_ = true;
    work_ready_.notify_all();
  }
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  util::MutexLock lock(mutex_);
  stopping_ = false;
}

void KernelPool::worker_loop() {
  util::MutexLock lock(mutex_);
  for (;;) {
    while (!stopping_ && (body_ == nullptr || next_chunk_ >= job_chunks_)) {
      work_ready_.wait(mutex_);
    }
    if (stopping_) return;
    run_chunks();
  }
}

void KernelPool::run_chunks() {
  // Claim-and-run loop, shared by workers and the orchestrating caller.
  // Chunk boundaries are pure functions of (job_n_, job_chunks_), so the
  // same subranges are computed whatever the claim order.
  while (body_ != nullptr && next_chunk_ < job_chunks_) {
    const unsigned idx = next_chunk_++;
    const std::size_t begin = job_n_ * idx / job_chunks_;
    const std::size_t end = job_n_ * (idx + 1) / job_chunks_;
    const auto* body = body_;
    mutex_.unlock();
    (*body)(begin, end);
    mutex_.lock();
    if (++done_chunks_ == job_chunks_) job_done_.notify_all();
  }
}

void KernelPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (threads() <= 1 || n < 2) {
    body(0, n);
    return;
  }
  // Busy pool (nested call, or another engine's pass in flight): run
  // inline rather than queueing — deadlock-free and bit-identical.
  if (!exclusive_.try_lock()) {
    body(0, n);
    return;
  }
  ensure_started();
  const unsigned nthreads = threads_;
  if (nthreads <= 1) {
    exclusive_.unlock();
    body(0, n);
    return;
  }
  {
    util::MutexLock lock(mutex_);
    body_ = &body;
    job_n_ = n;
    job_chunks_ = static_cast<unsigned>(
        std::min<std::size_t>(nthreads, n));
    next_chunk_ = 0;
    done_chunks_ = 0;
    work_ready_.notify_all();
    run_chunks();
    while (done_chunks_ != job_chunks_) job_done_.wait(mutex_);
    body_ = nullptr;
  }
  exclusive_.unlock();
}

unsigned kernel_threads() { return KernelPool::instance().threads(); }

void set_kernel_threads(unsigned n) { KernelPool::instance().set_threads(n); }

}  // namespace h3dfact::hdc::kernels
