#pragma once
// Kernel selection policy: capability-scored backend choice, the per-call
// vs tiled crossover for the batched similarity path, and the work
// threshold below which the engine-level worker pool stays cold. Replaces
// the first-match dispatch table (the bug class where avx512 would win on
// any machine that lists it, even where 512-bit downclocking makes AVX2
// faster) with an explicit, unit-testable scoring function over
// CpuCapabilities.
//
// Override seams, in precedence order:
//   1. force_policy(p)          — programmatic, wins until reset_policy();
//   2. H3DFACT_KERNEL_POLICY=   — environment: "auto" | "percall" | "tiled".
//      Unknown values throw by name (a typo must not silently become auto);
//   3. the built-in measured defaults (the crossover table in
//      docs/kernels.md).
//
// The policy never affects results — every backend and both tile shapes
// are bit-identical by contract — only which code runs. That is what makes
// the override seams safe to flip in CI matrices.

#include <cstddef>
#include <string_view>
#include <vector>

#include "hdc/kernels/capability.hpp"

namespace h3dfact::hdc::kernels {

struct KernelBackend;

/// How the batched similarity path shapes its loops.
enum class TileMode {
  kAuto,     ///< measured crossover: per-call below the batch threshold
  kPerCall,  ///< always query-major (one pass over the codebook per query)
  kTiled,    ///< always row-blocked (a row tile stays L1-hot across queries)
};

/// The tuning knobs the kernel layer consults per call. Defaults are the
/// measured table from docs/kernels.md (AVX2 dev host, dim 1024): the tiled
/// path overtakes per-call at batch 4, and threading starts paying for its
/// fan-out/join at roughly one codebook pass of 2^18 word-ops.
struct KernelPolicy {
  TileMode tile_mode = TileMode::kAuto;
  /// Batch size (query count) at or above which kAuto picks the tiled path.
  std::size_t tile_crossover_batch = 4;
  /// Minimum per-call work (rows * words-per-row * queries for similarity,
  /// rows * dim for projection) before a batched call fans out across the
  /// worker pool. Below it the fan-out/join overhead exceeds the win.
  std::size_t parallel_min_work = 1u << 18;
};

/// The policy every kernel call consults: a force_policy() override if one
/// is set, else the H3DFACT_KERNEL_POLICY resolution (cached on first use;
/// an unknown value throws out of every call rather than falling back).
[[nodiscard]] const KernelPolicy& active_policy();

/// Programmatic override of active_policy() (crossover sweeps, tests).
void force_policy(const KernelPolicy& policy);

/// Drop the force_policy() override; env/default resolution applies again.
void reset_policy();

/// Parse an H3DFACT_KERNEL_POLICY value ("auto" | "percall" | "tiled").
/// Throws std::runtime_error naming the value on anything else. Exposed so
/// tests cover the resolution rules without mutating the environment.
[[nodiscard]] KernelPolicy parse_policy(std::string_view spec);

/// Whether a batched similarity call over `batch` queries takes the tiled
/// path under `policy` (the kAuto crossover rule made testable).
[[nodiscard]] bool use_tiled(const KernelPolicy& policy, std::size_t batch);

/// Capability score of a backend name against a capability set. Higher
/// wins; 0 means "cannot run here". The ordering encodes the measured
/// ranking, not just vector width: avx512 outranks avx2 only when the CPU
/// has hardware popcount (avx512vpopcntdq) — the 512-bit LUT-popcount
/// fallback is AVX2-class throughput with downclock risk, so plain
/// avx512f/bw scores *below* avx2.
[[nodiscard]] int score_backend(std::string_view name,
                                const CpuCapabilities& caps);

/// The highest-scoring backend among `candidates` for `caps`; nullptr when
/// none can run (never happens with scalar present). Ties break toward the
/// earlier candidate so the ordering of available() stays authoritative.
[[nodiscard]] const KernelBackend* select_backend(
    const std::vector<const KernelBackend*>& candidates,
    const CpuCapabilities& caps);

}  // namespace h3dfact::hdc::kernels
