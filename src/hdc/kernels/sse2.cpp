// SSE2 backend. SSE2 is baseline in the x86-64 ABI, so like NEON on
// aarch64 the whole translation unit compiles at the platform ISA (no
// function target attributes, no CPU probe) — the factory is gated at
// compile time only. It exists as the portable-x86 rung between scalar and
// AVX2: no PSHUFB (SSSE3) and no POPCNT (SSE4.2), so popcount is the SWAR
// bit-slide reduced with PSADBW, and the 32-bit multiply is synthesized
// from PMULUDQ pairs.

#include "hdc/kernels/backend.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define H3DFACT_KERNELS_SSE2 1
#include <emmintrin.h>

#include <bit>
#include <cstdint>
#endif

namespace h3dfact::hdc::kernels {

#if defined(H3DFACT_KERNELS_SSE2)

namespace {

// popcount(a XOR b) over nw words, 2 words per step: the classic SWAR
// ladder (pairs, nibbles, bytes) in 128-bit lanes, byte counts summed with
// PSADBW against zero into the two 64-bit lanes of the accumulator.
long long xor_popcount_sse2(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t nw) {
  const __m128i m1 = _mm_set1_epi8(0x55);
  const __m128i m2 = _mm_set1_epi8(0x33);
  const __m128i m4 = _mm_set1_epi8(0x0f);
  const __m128i zero = _mm_setzero_si128();
  __m128i acc = _mm_setzero_si128();
  std::size_t w = 0;
  for (; w + 2 <= nw; w += 2) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + w));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + w));
    __m128i x = _mm_xor_si128(va, vb);
    x = _mm_sub_epi8(x, _mm_and_si128(_mm_srli_epi64(x, 1), m1));
    x = _mm_add_epi8(_mm_and_si128(x, m2),
                     _mm_and_si128(_mm_srli_epi64(x, 2), m2));
    x = _mm_and_si128(_mm_add_epi8(x, _mm_srli_epi64(x, 4)), m4);
    acc = _mm_add_epi64(acc, _mm_sad_epu8(x, zero));
  }
  alignas(16) std::uint64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  long long total = static_cast<long long>(lanes[0] + lanes[1]);
  for (; w < nw; ++w) total += std::popcount(a[w] ^ b[w]);
  return total;
}

// 32-bit lane-wise multiply from PMULUDQ (SSE2 has no PMULLD): even lanes
// multiply in place, odd lanes via a 4-byte shift, low halves re-interleaved.
inline __m128i mullo_epi32_sse2(__m128i a, __m128i b) {
  const __m128i even = _mm_mul_epu32(a, b);
  const __m128i odd =
      _mm_mul_epu32(_mm_srli_si128(a, 4), _mm_srli_si128(b, 4));
  return _mm_unpacklo_epi32(
      _mm_shuffle_epi32(even, _MM_SHUFFLE(0, 0, 2, 0)),
      _mm_shuffle_epi32(odd, _MM_SHUFFLE(0, 0, 2, 0)));
}

// y[0..n) += a * row[0..n): int8 rows sign-extended s8→s16→s32 with the
// compare-against-zero unpack idiom (no PMOVSX before SSE4.1), 8 lanes per
// step in two 128-bit halves.
void axpy_row_sse2(int a, const std::int8_t* row, int* y, std::size_t n) {
  const __m128i va = _mm_set1_epi32(a);
  const __m128i zero = _mm_setzero_si128();
  std::size_t d = 0;
  for (; d + 8 <= n; d += 8) {
    const __m128i r8 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(row + d));
    const __m128i sign8 = _mm_cmpgt_epi8(zero, r8);
    const __m128i r16 = _mm_unpacklo_epi8(r8, sign8);
    const __m128i sign16 = _mm_cmpgt_epi16(zero, r16);
    const __m128i r_lo = _mm_unpacklo_epi16(r16, sign16);
    const __m128i r_hi = _mm_unpackhi_epi16(r16, sign16);
    __m128i y_lo = _mm_loadu_si128(reinterpret_cast<__m128i*>(y + d));
    __m128i y_hi = _mm_loadu_si128(reinterpret_cast<__m128i*>(y + d + 4));
    y_lo = _mm_add_epi32(y_lo, mullo_epi32_sse2(va, r_lo));
    y_hi = _mm_add_epi32(y_hi, mullo_epi32_sse2(va, r_hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(y + d), y_lo);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(y + d + 4), y_hi);
  }
  for (; d < n; ++d) y[d] += a * row[d];
}

void similarity_tile_sse2(const std::uint64_t* rows, std::size_t row_stride,
                          std::size_t nrows,
                          const std::uint64_t* const* queries, std::size_t nq,
                          std::size_t nw, long long dim, int* sims,
                          std::size_t sim_stride) {
  for (std::size_t q = 0; q < nq; ++q) {
    for (std::size_t i = 0; i < nrows; ++i) {
      const long long disagree =
          xor_popcount_sse2(queries[q], rows + i * row_stride, nw);
      sims[i * sim_stride + q] = static_cast<int>(dim - 2 * disagree);
    }
  }
}

void project_tile_sse2(const std::int8_t* row, std::size_t dim,
                       const int* coeffs, std::size_t batch, int* scratch) {
  for (std::size_t b = 0; b < batch; ++b) {
    const int c = coeffs[b];
    if (c == 0) continue;
    axpy_row_sse2(c, row, scratch + b * dim, dim);
  }
}

constexpr KernelBackend kSse2{
    "sse2",          xor_popcount_sse2, axpy_row_sse2,
    similarity_tile_sse2, project_tile_sse2,
};

}  // namespace

const KernelBackend* sse2_backend() { return &kSse2; }

#else  // !H3DFACT_KERNELS_SSE2

const KernelBackend* sse2_backend() { return nullptr; }

#endif

}  // namespace h3dfact::hdc::kernels
