// AVX-512 backend. Like avx2.cpp the translation unit compiles at the
// baseline ISA with function-level target attributes, and the factory
// probes the CPU — but here the probe picks between two bit-identical
// variants of the popcount path: VPOPCNTDQ hardware lane popcount where
// the CPU has it, else the AVX2-era nibble-LUT sequence widened to 512-bit
// registers (AVX512BW supplies VPSHUFB/VPSADBW at 512 bits). Both variants
// publish the same "avx512" name; the kernel *policy* (policy.cpp) is what
// decides whether avx512 should outrank avx2 on a given capability set —
// the backend itself only reports what can run.

#include "hdc/kernels/backend.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define H3DFACT_KERNELS_AVX512 1
#include <immintrin.h>

#include <bit>
#include <cstdint>
#endif

namespace h3dfact::hdc::kernels {

#if defined(H3DFACT_KERNELS_AVX512)

namespace {

// popcount(a XOR b), 8 words per step, one VPOPCNTQ per 512-bit lane pair.
__attribute__((target("avx512f,avx512vpopcntdq"))) long long
xor_popcount_avx512pop(const std::uint64_t* a, const std::uint64_t* b,
                       std::size_t nw) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + 8 <= nw; w += 8) {
    const __m512i va = _mm512_loadu_si512(a + w);
    const __m512i vb = _mm512_loadu_si512(b + w);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_xor_si512(va, vb)));
  }
  long long total = _mm512_reduce_add_epi64(acc);
  for (; w < nw; ++w) total += std::popcount(a[w] ^ b[w]);
  return total;
}

// The same contract without VPOPCNTDQ: the Mula nibble-LUT algorithm of
// avx2.cpp at double width — VPSHUFB/VPSADBW are 512-bit under AVX512BW.
__attribute__((target("avx512f,avx512bw"))) long long xor_popcount_avx512lut(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t nw) {
  const __m512i lut = _mm512_broadcast_i32x4(
      _mm_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
  const __m512i low = _mm512_set1_epi8(0x0f);
  __m512i acc = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + 8 <= nw; w += 8) {
    const __m512i va = _mm512_loadu_si512(a + w);
    const __m512i vb = _mm512_loadu_si512(b + w);
    const __m512i x = _mm512_xor_si512(va, vb);
    const __m512i lo = _mm512_and_si512(x, low);
    const __m512i hi = _mm512_and_si512(_mm512_srli_epi32(x, 4), low);
    const __m512i cnt = _mm512_add_epi8(_mm512_shuffle_epi8(lut, lo),
                                        _mm512_shuffle_epi8(lut, hi));
    acc =
        _mm512_add_epi64(acc, _mm512_sad_epu8(cnt, _mm512_setzero_si512()));
  }
  long long total = _mm512_reduce_add_epi64(acc);
  for (; w < nw; ++w) total += std::popcount(a[w] ^ b[w]);
  return total;
}

// y[0..n) += a * row[0..n): 16 int8 lanes sign-extended to i32 per step.
__attribute__((target("avx512f"))) void axpy_row_avx512(int a,
                                                        const std::int8_t* row,
                                                        int* y,
                                                        std::size_t n) {
  const __m512i va = _mm512_set1_epi32(a);
  std::size_t d = 0;
  for (; d + 16 <= n; d += 16) {
    const __m128i r8 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + d));
    const __m512i r32 = _mm512_cvtepi8_epi32(r8);
    __m512i yv = _mm512_loadu_si512(y + d);
    yv = _mm512_add_epi32(yv, _mm512_mullo_epi32(va, r32));
    _mm512_storeu_si512(y + d, yv);
  }
  for (; d < n; ++d) y[d] += a * row[d];
}

// Tile loops carry the matching target attributes so the primitives inline.
__attribute__((target("avx512f,avx512vpopcntdq"))) void
similarity_tile_avx512pop(const std::uint64_t* rows, std::size_t row_stride,
                          std::size_t nrows,
                          const std::uint64_t* const* queries, std::size_t nq,
                          std::size_t nw, long long dim, int* sims,
                          std::size_t sim_stride) {
  for (std::size_t q = 0; q < nq; ++q) {
    for (std::size_t i = 0; i < nrows; ++i) {
      const long long disagree =
          xor_popcount_avx512pop(queries[q], rows + i * row_stride, nw);
      sims[i * sim_stride + q] = static_cast<int>(dim - 2 * disagree);
    }
  }
}

__attribute__((target("avx512f,avx512bw"))) void similarity_tile_avx512lut(
    const std::uint64_t* rows, std::size_t row_stride, std::size_t nrows,
    const std::uint64_t* const* queries, std::size_t nq, std::size_t nw,
    long long dim, int* sims, std::size_t sim_stride) {
  for (std::size_t q = 0; q < nq; ++q) {
    for (std::size_t i = 0; i < nrows; ++i) {
      const long long disagree =
          xor_popcount_avx512lut(queries[q], rows + i * row_stride, nw);
      sims[i * sim_stride + q] = static_cast<int>(dim - 2 * disagree);
    }
  }
}

__attribute__((target("avx512f"))) void project_tile_avx512(
    const std::int8_t* row, std::size_t dim, const int* coeffs,
    std::size_t batch, int* scratch) {
  for (std::size_t b = 0; b < batch; ++b) {
    const int c = coeffs[b];
    if (c == 0) continue;
    axpy_row_avx512(c, row, scratch + b * dim, dim);
  }
}

constexpr KernelBackend kAvx512Pop{
    "avx512",          xor_popcount_avx512pop, axpy_row_avx512,
    similarity_tile_avx512pop, project_tile_avx512,
};

constexpr KernelBackend kAvx512Lut{
    "avx512",          xor_popcount_avx512lut, axpy_row_avx512,
    similarity_tile_avx512lut, project_tile_avx512,
};

}  // namespace

const KernelBackend* avx512_backend() {
  static const KernelBackend* selected = []() -> const KernelBackend* {
    if (!__builtin_cpu_supports("avx512f") ||
        !__builtin_cpu_supports("avx512bw")) {
      return nullptr;
    }
    return __builtin_cpu_supports("avx512vpopcntdq") ? &kAvx512Pop
                                                     : &kAvx512Lut;
  }();
  return selected;
}

#else  // !H3DFACT_KERNELS_AVX512

const KernelBackend* avx512_backend() { return nullptr; }

#endif

}  // namespace h3dfact::hdc::kernels
