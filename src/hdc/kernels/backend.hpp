#pragma once
// Multi-ISA kernel backend layer for the two MVM hot-path primitives
// (XOR+popcount similarity, ±1-row axpy projection) and their batched tile
// variants. Each backend is one translation unit compiled for its ISA
// (scalar always; SSE2 at the x86-64 baseline; AVX2 and AVX-512 via
// function-level target attributes on x86_64; NEON on aarch64 where
// Advanced SIMD is baseline). Selection happens once at runtime by scoring
// every compiled-in backend against the probed CPU capabilities
// (capability.hpp + policy.hpp — not first-match order), overridable by the
// H3DFACT_KERNEL_BACKEND environment variable or programmatically via
// force_backend() — so any compiled-in backend can be exercised on any host
// that supports it, and the parity/fuzz suites can pin every backend
// against scalar bit for bit.
//
// The contract for every entry point is exact integer arithmetic: all
// backends must produce bit-identical results for identical inputs. The
// tail elements past the widest vector width are always handled (scalar
// loops), so arbitrary dims/word counts are valid.

#include <cstdint>
#include <string_view>
#include <vector>

namespace h3dfact::hdc::kernels {

/// One ISA-specific implementation of the MVM kernel primitives. Plain
/// function-pointer table so per-ISA translation units stay free of
/// virtual-dispatch plumbing and the active table is one pointer load.
struct KernelBackend {
  /// Stable identifier: "scalar", "sse2", "avx2", "avx512" or "neon". Also
  /// the value the
  /// H3DFACT_KERNEL_BACKEND environment variable matches against, and the
  /// `backend` field of the bench/kernels --json artifact.
  const char* name;

  /// popcount(a XOR b) over nw 64-bit words (the disagree count behind the
  /// similarity dot product a·b = dim − 2·disagree).
  long long (*xor_popcount)(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t nw);

  /// y[0..n) += a * row[0..n) with ±1 int8 rows widened to i32.
  void (*axpy_row)(int a, const std::int8_t* row, int* y, std::size_t n);

  /// Batched similarity tile: for every query q and tile row i,
  ///   sims[i * sim_stride + q] = dim − 2·popcount(queries[q] XOR row_i)
  /// where row_i = rows[i * row_stride .. i * row_stride + nw). Queries
  /// iterate outermost so a tile of rows stays L1-hot across the whole
  /// batch (the blocked layout the batched codebook path relies on). With
  /// nq == 1 and sim_stride == 1 this is the per-call similarity loop.
  void (*similarity_tile)(const std::uint64_t* rows, std::size_t row_stride,
                          std::size_t nrows,
                          const std::uint64_t* const* queries, std::size_t nq,
                          std::size_t nw, long long dim, int* sims,
                          std::size_t sim_stride);

  /// Batched projection pass of one dense ±1 row against every batch item:
  ///   scratch[b*dim .. b*dim+dim) += coeffs[b] * row[0..dim)
  /// for each b in [0, batch) with coeffs[b] != 0. `coeffs` is one SoA row
  /// of a CoeffBlock (B contiguous coefficients), `scratch` batch-major.
  void (*project_tile)(const std::int8_t* row, std::size_t dim,
                       const int* coeffs, std::size_t batch, int* scratch);
};

/// Every backend compiled into this binary that can run on this CPU, scalar
/// first. Scalar is always present, so the result is never empty.
[[nodiscard]] std::vector<const KernelBackend*> available();

/// Look a backend up by name among available(); nullptr when the name is
/// unknown or the backend cannot run here (e.g. "neon" on x86_64).
[[nodiscard]] const KernelBackend* find(std::string_view name);

/// Resolve the startup selection: `requested` of nullptr/empty picks the
/// highest-scoring available backend for the probed CPU capabilities
/// (policy.hpp's score_backend/select_backend — e.g. avx512 outranks avx2
/// only when VPOPCNTDQ is present); otherwise the named backend, throwing
/// std::runtime_error when it is unknown or unavailable (a typoed
/// H3DFACT_KERNEL_BACKEND must fail loudly, not silently fall back and
/// defeat a CI parity gate). Exposed so tests can cover the resolution
/// rules without mutating the process environment.
[[nodiscard]] const KernelBackend& resolve_backend(const char* requested);

/// The backend every kernel call routes through: a force_backend() override
/// if one is set, else the cached startup selection (H3DFACT_KERNEL_BACKEND
/// or CPU-feature auto-detection, resolved on first use).
[[nodiscard]] const KernelBackend& active();

/// Programmatic override of active(), e.g. to pin scalar for a parity or
/// A/B timing run. Throws std::runtime_error (and changes nothing) for an
/// unknown or unavailable name — a forced-backend matrix leg that cannot
/// actually pin its backend must fail loudly, not silently keep measuring
/// whatever auto-detection picked.
void force_backend(std::string_view name);

/// Drop the force_backend() override; env/auto selection applies again.
void reset_backend();

// Per-ISA factories (one per backend translation unit). Each returns its
// backend table, or nullptr when the ISA is not compiled in or the CPU
// lacks the feature. Use available()/find() instead of calling these
// directly.
const KernelBackend* scalar_backend();
const KernelBackend* sse2_backend();
const KernelBackend* avx2_backend();
const KernelBackend* avx512_backend();
const KernelBackend* neon_backend();

}  // namespace h3dfact::hdc::kernels
