// AVX2 backend. The translation unit compiles at the baseline ISA —
// function-level target attributes keep the binary portable — and the
// factory returns nullptr unless the CPU actually reports AVX2, so the
// dispatch layer can list it only where it runs.

#include "hdc/kernels/backend.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define H3DFACT_KERNELS_AVX2 1
#include <immintrin.h>

#include <bit>
#include <cstdint>
#endif

namespace h3dfact::hdc::kernels {

#if defined(H3DFACT_KERNELS_AVX2)

namespace {

// popcount(a XOR b) over nw words via the nibble-LUT (Mula) algorithm:
// 32 bytes per step, byte counts reduced with SAD against zero.
__attribute__((target("avx2"))) long long xor_popcount_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t nw) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + 4 <= nw; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    const __m256i x = _mm256_xor_si256(va, vb);
    const __m256i lo = _mm256_and_si256(x, low);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(x, 4), low);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                        _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  long long total =
      static_cast<long long>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; w < nw; ++w) total += std::popcount(a[w] ^ b[w]);
  return total;
}

// y[0..n) += a * row[0..n) with ±1 int8 rows widened to i32.
__attribute__((target("avx2"))) void axpy_row_avx2(int a,
                                                   const std::int8_t* row,
                                                   int* y, std::size_t n) {
  const __m256i va = _mm256_set1_epi32(a);
  std::size_t d = 0;
  for (; d + 8 <= n; d += 8) {
    const __m128i r8 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(row + d));
    const __m256i r32 = _mm256_cvtepi8_epi32(r8);
    __m256i yv = _mm256_loadu_si256(reinterpret_cast<__m256i*>(y + d));
    yv = _mm256_add_epi32(yv, _mm256_mullo_epi32(va, r32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + d), yv);
  }
  for (; d < n; ++d) y[d] += a * row[d];
}

// The tile loops carry the same target attribute so the primitive calls
// inline into them instead of bouncing through the portable-ISA boundary.
__attribute__((target("avx2"))) void similarity_tile_avx2(
    const std::uint64_t* rows, std::size_t row_stride, std::size_t nrows,
    const std::uint64_t* const* queries, std::size_t nq, std::size_t nw,
    long long dim, int* sims, std::size_t sim_stride) {
  for (std::size_t q = 0; q < nq; ++q) {
    for (std::size_t i = 0; i < nrows; ++i) {
      const long long disagree =
          xor_popcount_avx2(queries[q], rows + i * row_stride, nw);
      sims[i * sim_stride + q] = static_cast<int>(dim - 2 * disagree);
    }
  }
}

__attribute__((target("avx2"))) void project_tile_avx2(const std::int8_t* row,
                                                       std::size_t dim,
                                                       const int* coeffs,
                                                       std::size_t batch,
                                                       int* scratch) {
  for (std::size_t b = 0; b < batch; ++b) {
    const int c = coeffs[b];
    if (c == 0) continue;
    axpy_row_avx2(c, row, scratch + b * dim, dim);
  }
}

constexpr KernelBackend kAvx2{
    "avx2",          xor_popcount_avx2, axpy_row_avx2,
    similarity_tile_avx2, project_tile_avx2,
};

}  // namespace

const KernelBackend* avx2_backend() {
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok ? &kAvx2 : nullptr;
}

#else  // !H3DFACT_KERNELS_AVX2

const KernelBackend* avx2_backend() { return nullptr; }

#endif

}  // namespace h3dfact::hdc::kernels
