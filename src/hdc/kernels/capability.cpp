#include "hdc/kernels/capability.hpp"

namespace h3dfact::hdc::kernels {

std::string CpuCapabilities::to_string() const {
  std::string out;
  auto add = [&out](bool have, const char* name) {
    if (!have) return;
    if (!out.empty()) out += ' ';
    out += name;
  };
  add(sse2, "sse2");
  add(avx2, "avx2");
  add(avx512f, "avx512f");
  add(avx512bw, "avx512bw");
  add(avx512vpopcntdq, "avx512vpopcntdq");
  add(neon, "neon");
  if (out.empty()) out = "none";
  return out;
}

namespace {

CpuCapabilities probe_once() {
  CpuCapabilities caps;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  // SSE2 is baseline in the x86-64 ABI; the rest come from CPUID leaves.
  caps.sse2 = true;
  caps.avx2 = __builtin_cpu_supports("avx2");
  caps.avx512f = __builtin_cpu_supports("avx512f");
  caps.avx512bw = __builtin_cpu_supports("avx512bw");
  caps.avx512vpopcntdq = __builtin_cpu_supports("avx512vpopcntdq");
#elif defined(__aarch64__) || defined(_M_ARM64)
  // Advanced SIMD is mandatory in AArch64: no runtime probe needed.
  caps.neon = true;
#endif
  return caps;
}

}  // namespace

const CpuCapabilities& probe() {
  static const CpuCapabilities caps = probe_once();
  return caps;
}

}  // namespace h3dfact::hdc::kernels
