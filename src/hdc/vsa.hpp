#pragma once
// Vector-symbolic algebra convenience operations built on BipolarVector
// (binding, bundling/superposition, permutation-based sequences; Sec. II-A).

#include <vector>

#include "hdc/hypervector.hpp"

namespace h3dfact::hdc {

/// Bind (element-wise multiply) a list of vectors: v1 ⊙ v2 ⊙ ... ⊙ vk.
BipolarVector bind_all(const std::vector<BipolarVector>& vs);

/// Majority-rule bundle [+] with deterministic (+1) tie-break.
BipolarVector bundle(const std::vector<BipolarVector>& vs);

/// Majority-rule bundle with random tie-break (required for even counts).
BipolarVector bundle(const std::vector<BipolarVector>& vs, util::Rng& rng);

/// Weighted bundle: sign(Σ w_i v_i).
BipolarVector bundle_weighted(const std::vector<BipolarVector>& vs,
                              const std::vector<int>& weights);

/// Encode a sequence by permuting position i by ρ^i and binding:
/// seq = ρ^0(v0) ⊙ ρ^1(v1) ⊙ ... (captures order, Sec. II-A op (3)).
BipolarVector encode_sequence(const std::vector<BipolarVector>& vs);

/// Expected |cosine| magnitude between random vectors ~ 1/sqrt(D);
/// returns the z-score of an observed cosine under the null hypothesis
/// of unrelated vectors.
double quasi_orthogonality_z(double cosine, std::size_t dim);

}  // namespace h3dfact::hdc
