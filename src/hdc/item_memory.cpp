#include "hdc/item_memory.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace h3dfact::hdc {

std::size_t ItemMemory::add(std::string label, BipolarVector v) {
  if (v.dim() != dim_) throw std::invalid_argument("item dim mismatch");
  items_.push_back(std::move(v));
  labels_.push_back(std::move(label));
  return items_.size() - 1;
}

std::optional<std::size_t> ItemMemory::find(const std::string& label) const {
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == label) return i;
  }
  return std::nullopt;
}

CleanupResult ItemMemory::cleanup(const BipolarVector& query) const {
  if (items_.empty()) throw std::logic_error("cleanup on empty item memory");
  CleanupResult best;
  best.dot = items_[0].dot(query);
  for (std::size_t i = 1; i < items_.size(); ++i) {
    long long d = items_[i].dot(query);
    if (d > best.dot) {
      best.dot = d;
      best.index = i;
    }
  }
  best.label = labels_[best.index];
  best.cosine = static_cast<double>(best.dot) / static_cast<double>(dim_);
  return best;
}

std::vector<CleanupResult> ItemMemory::top_k(const BipolarVector& query,
                                             std::size_t k) const {
  std::vector<CleanupResult> all;
  all.reserve(items_.size());
  for (std::size_t i = 0; i < items_.size(); ++i) {
    CleanupResult r;
    r.index = i;
    r.label = labels_[i];
    r.dot = items_[i].dot(query);
    r.cosine = static_cast<double>(r.dot) / static_cast<double>(dim_);
    all.push_back(std::move(r));
  }
  std::sort(all.begin(), all.end(),
            [](const CleanupResult& a, const CleanupResult& b) { return a.dot > b.dot; });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace h3dfact::hdc
