#include "hdc/encoding.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace h3dfact::hdc {

SceneEncoder::SceneEncoder(std::size_t dim, std::vector<AttributeSpec> specs,
                           util::Rng& rng)
    : specs_(std::move(specs)) {
  std::vector<Codebook> books;
  books.reserve(specs_.size());
  for (const auto& spec : specs_) {
    if (spec.values.empty()) {
      throw std::invalid_argument("attribute with empty vocabulary: " + spec.name);
    }
    books.emplace_back(dim, spec.values.size(), rng, spec.name);
  }
  set_ = CodebookSet(std::move(books));
}

BipolarVector SceneEncoder::encode(const SceneObject& object) const {
  if (object.attribute_indices.size() != specs_.size()) {
    throw std::invalid_argument("object attribute count mismatch");
  }
  for (std::size_t f = 0; f < specs_.size(); ++f) {
    if (object.attribute_indices[f] >= specs_[f].values.size()) {
      throw std::out_of_range("attribute value index out of range for " + specs_[f].name);
    }
  }
  return set_.compose(object.attribute_indices);
}

std::vector<std::string> SceneEncoder::labels(
    const std::vector<std::size_t>& indices) const {
  if (indices.size() != specs_.size()) {
    throw std::invalid_argument("index count mismatch in labels");
  }
  std::vector<std::string> out;
  out.reserve(indices.size());
  for (std::size_t f = 0; f < specs_.size(); ++f) {
    out.push_back(specs_[f].values.at(indices[f]));
  }
  return out;
}

SceneObject SceneEncoder::random_object(util::Rng& rng) const {
  SceneObject obj;
  obj.attribute_indices.reserve(specs_.size());
  for (const auto& spec : specs_) {
    obj.attribute_indices.push_back(rng.below(spec.values.size()));
  }
  return obj;
}

std::vector<AttributeSpec> visual_object_schema() {
  return {
      {"shape", {"circle", "triangle", "square", "star", "hexagon", "diamond", "cross"}},
      {"color", {"blue", "red", "green", "yellow", "purple", "orange", "cyan"}},
      {"vpos", {"top", "middle", "bottom"}},
      {"hpos", {"left", "center", "right"}},
  };
}

}  // namespace h3dfact::hdc
