#pragma once
// Codebooks of item vectors (Sec. II-B).
//
// A codebook X = [x_1 ... x_M] holds M random item vectors of dimension D.
// The resonator network needs two kernels per codebook per iteration:
//   similarity  a = Xᵀ u   (M integer dot products — RRAM tier-3 in hardware)
//   projection  y = X a    (D integer accumulations — RRAM tier-2 in hardware)
// Both are provided here as exact software kernels; the cim/arch layers model
// the same computation through the noisy analog path. The arithmetic itself
// lives in the multi-ISA backend layer (hdc/kernels/backend.hpp): every
// per-call and batched entry point routes through the runtime-selected
// KernelBackend, with an overload to pin a specific backend explicitly.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hdc/hypervector.hpp"
#include "util/rng.hpp"

namespace h3dfact::hdc {

namespace kernels {
struct KernelBackend;
}  // namespace kernels

/// Structure-of-arrays block of integer coefficients for B batch items of
/// `size` entries each: entry i of item b lives at data[i*batch + b], so a
/// kernel that walks entries (codebook rows, output dimensions) touches the
/// whole batch contiguously — the layout the batched MVM kernels and the
/// CIM macro batch pass consume directly.
struct CoeffBlock {
  std::size_t size = 0;   ///< entries per batch item (M or D)
  std::size_t batch = 0;  ///< number of batch items B
  std::vector<int> data;  ///< size*batch values, SoA (entry-major)

  CoeffBlock() = default;
  CoeffBlock(std::size_t size_, std::size_t batch_)
      : size(size_), batch(batch_), data(size_ * batch_, 0) {}

  [[nodiscard]] int at(std::size_t i, std::size_t b) const {
    return data[i * batch + b];
  }
  int& at(std::size_t i, std::size_t b) { return data[i * batch + b]; }

  /// Gather batch item b into a contiguous vector (per-item channel/argmax).
  [[nodiscard]] std::vector<int> item(std::size_t b) const;

  /// Scatter a contiguous vector into batch item b. `values.size() == size`.
  void set_item(std::size_t b, const std::vector<int>& values);

  /// Pack per-item vectors (all of equal length) into a block.
  [[nodiscard]] static CoeffBlock from_items(
      const std::vector<std::vector<int>>& items);
};

/// A set of M random item vectors with fast similarity / projection kernels.
class Codebook {
 public:
  Codebook() = default;

  /// Generate M i.i.d. random item vectors of dimension D.
  Codebook(std::size_t dim, std::size_t size, util::Rng& rng,
           std::string name = "");

  /// Build from explicit vectors (all must share the same dimension).
  explicit Codebook(std::vector<BipolarVector> vectors, std::string name = "");

  /// Rebuild from a row-major block of packed codevector words (`size` rows
  /// of ceil(dim/64) words each) — the deserialization path of src/io/.
  /// With `borrow == false` the words are copied. With `borrow == true` the
  /// similarity kernels stream rows straight out of `words` (the mmap
  /// zero-copy path): the caller must keep the block alive and unchanged
  /// for the lifetime of the codebook and every copy of it (io::codec ties
  /// the mapping's lifetime to the set with an aliasing shared_ptr).
  static Codebook from_packed(std::size_t dim, std::size_t size,
                              const std::uint64_t* words, std::size_t n_words,
                              std::string name = "", bool borrow = false);

  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] std::size_t size() const { return vectors_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const BipolarVector& vector(std::size_t m) const { return vectors_[m]; }
  [[nodiscard]] const std::vector<BipolarVector>& vectors() const { return vectors_; }

  /// a = Xᵀ u: dot product of u with every codevector. a[m] ∈ [−D, D].
  [[nodiscard]] std::vector<int> similarity(const BipolarVector& u) const;

  /// similarity() pinned to one kernel backend (parity tests, A/B timing);
  /// the overload without a backend uses the runtime-selected one.
  [[nodiscard]] std::vector<int> similarity(
      const BipolarVector& u, const kernels::KernelBackend& backend) const;

  /// y = X a: weighted sum of codevectors with integer coefficients.
  [[nodiscard]] std::vector<int> project(const std::vector<int>& coeffs) const;

  /// project() pinned to one kernel backend.
  [[nodiscard]] std::vector<int> project(
      const std::vector<int>& coeffs,
      const kernels::KernelBackend& backend) const;

  /// Batched a_b = Xᵀ u_b over the shared codebook: the kernel policy
  /// (hdc/kernels/policy.hpp) picks per-call vs blocked-tile loop shape by
  /// batch size, and passes above the policy's work threshold fan codebook
  /// row ranges across the KernelPool (SIMD-accelerated where the CPU
  /// supports it at runtime; bit-identical at any thread count). Returns an
  /// M×B block; item b is bit-for-bit equal to similarity(us[b]).
  [[nodiscard]] CoeffBlock similarity_batch(
      std::span<const BipolarVector> us) const;

  /// similarity_batch() pinned to one kernel backend.
  [[nodiscard]] CoeffBlock similarity_batch(
      std::span<const BipolarVector> us,
      const kernels::KernelBackend& backend) const;

  /// Batched y_b = X a_b: each dense codebook row is streamed once and
  /// applied to all batch accumulators; large passes fan batch sub-ranges
  /// (or dimension slices when B == 1) across the KernelPool, bit-identical
  /// at any thread count. `coeffs.size == size()`. Returns a D×B block;
  /// item b is bit-for-bit equal to project(coeffs.item(b)).
  [[nodiscard]] CoeffBlock project_batch(const CoeffBlock& coeffs) const;

  /// project_batch() pinned to one kernel backend.
  [[nodiscard]] CoeffBlock project_batch(
      const CoeffBlock& coeffs, const kernels::KernelBackend& backend) const;

  /// Fused resonator step: sign(X (Xᵀ u)) with deterministic tie-break.
  [[nodiscard]] BipolarVector resonate(const BipolarVector& u) const;

  /// Index of the codevector with maximal dot product to u (cleanup).
  [[nodiscard]] std::size_t nearest(const BipolarVector& u) const;

  /// Superposition (majority bundle) of all codevectors — the standard
  /// resonator initial state x̂(0). Ties break deterministically to +1.
  [[nodiscard]] BipolarVector superposition() const;

  /// Superposition with random tie-break (preferred for even codebook sizes,
  /// where exact count ties are common).
  [[nodiscard]] BipolarVector superposition(util::Rng& rng) const;

  /// Row-major ±1 int8 matrix view (size() × dim()), for external kernels.
  [[nodiscard]] const std::vector<std::int8_t>& dense() const { return dense_; }

  /// Packed words per codevector row (= ceil(dim/64)).
  [[nodiscard]] std::size_t words_per_row() const { return words_; }

  /// Row-major packed codevector words (size() rows × words_per_row()):
  /// the exact bytes the similarity kernels stream and src/io/ serializes.
  /// Points into the owned copy, or into a borrowed block (mmap) for
  /// codebooks built with from_packed(..., borrow = true).
  [[nodiscard]] const std::uint64_t* packed_data() const {
    return packed_view_ ? packed_view_ : packed_.data();
  }

  /// True when packed_data() borrows caller-owned storage (zero-copy load).
  [[nodiscard]] bool packed_borrowed() const { return packed_view_ != nullptr; }

 private:
  void build_dense();

  std::size_t dim_ = 0;
  std::string name_;
  std::vector<BipolarVector> vectors_;
  std::vector<std::int8_t> dense_;  // size() rows × dim() cols, ±1
  // Row-major copy of the packed codevector words (size() rows × words_
  // words), so the similarity tile kernels stream rows contiguously.
  std::vector<std::uint64_t> packed_;
  // Borrowed packed rows (from_packed with borrow=true): when set, the
  // kernels read from here and packed_ stays empty.
  const std::uint64_t* packed_view_ = nullptr;
  std::size_t words_ = 0;  // packed words per row
};

/// The F codebooks of a factorization problem, e.g. {shape, color, v-pos, h-pos}.
class CodebookSet {
 public:
  CodebookSet() = default;

  /// F codebooks, each with M vectors of dimension D.
  CodebookSet(std::size_t dim, std::size_t factors, std::size_t size,
              util::Rng& rng);

  explicit CodebookSet(std::vector<Codebook> books);

  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] std::size_t factors() const { return books_.size(); }
  [[nodiscard]] const Codebook& book(std::size_t f) const { return books_[f]; }

  /// Compose a product vector s = x_{i1} ⊙ x_{i2} ⊙ ... from indices.
  [[nodiscard]] BipolarVector compose(const std::vector<std::size_t>& indices) const;

  /// Total search-space size ∏ M_f as double (can exceed 2^64).
  [[nodiscard]] double search_space() const;

 private:
  std::size_t dim_ = 0;
  std::vector<Codebook> books_;
};

/// Order-independent FNV-1a digest of a codebook set: structural dimensions
/// plus every codevector's packed words in (factor, codevector, word) order.
/// Any bit of difference — size, shape or content — changes the digest.
/// This is the identity both serve's worker-binding handshake and the
/// src/io/ artifact layer verify against.
std::uint64_t set_fingerprint(const CodebookSet& set);

}  // namespace h3dfact::hdc
