#pragma once
// Codebooks of item vectors (Sec. II-B).
//
// A codebook X = [x_1 ... x_M] holds M random item vectors of dimension D.
// The resonator network needs two kernels per codebook per iteration:
//   similarity  a = Xᵀ u   (M integer dot products — RRAM tier-3 in hardware)
//   projection  y = X a    (D integer accumulations — RRAM tier-2 in hardware)
// Both are provided here as exact software kernels; the cim/arch layers model
// the same computation through the noisy analog path.

#include <cstdint>
#include <string>
#include <vector>

#include "hdc/hypervector.hpp"
#include "util/rng.hpp"

namespace h3dfact::hdc {

/// A set of M random item vectors with fast similarity / projection kernels.
class Codebook {
 public:
  Codebook() = default;

  /// Generate M i.i.d. random item vectors of dimension D.
  Codebook(std::size_t dim, std::size_t size, util::Rng& rng,
           std::string name = "");

  /// Build from explicit vectors (all must share the same dimension).
  explicit Codebook(std::vector<BipolarVector> vectors, std::string name = "");

  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] std::size_t size() const { return vectors_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const BipolarVector& vector(std::size_t m) const { return vectors_[m]; }
  [[nodiscard]] const std::vector<BipolarVector>& vectors() const { return vectors_; }

  /// a = Xᵀ u: dot product of u with every codevector. a[m] ∈ [−D, D].
  [[nodiscard]] std::vector<int> similarity(const BipolarVector& u) const;

  /// y = X a: weighted sum of codevectors with integer coefficients.
  [[nodiscard]] std::vector<int> project(const std::vector<int>& coeffs) const;

  /// Fused resonator step: sign(X (Xᵀ u)) with deterministic tie-break.
  [[nodiscard]] BipolarVector resonate(const BipolarVector& u) const;

  /// Index of the codevector with maximal dot product to u (cleanup).
  [[nodiscard]] std::size_t nearest(const BipolarVector& u) const;

  /// Superposition (majority bundle) of all codevectors — the standard
  /// resonator initial state x̂(0). Ties break deterministically to +1.
  [[nodiscard]] BipolarVector superposition() const;

  /// Superposition with random tie-break (preferred for even codebook sizes,
  /// where exact count ties are common).
  [[nodiscard]] BipolarVector superposition(util::Rng& rng) const;

  /// Row-major ±1 int8 matrix view (size() × dim()), for external kernels.
  [[nodiscard]] const std::vector<std::int8_t>& dense() const { return dense_; }

 private:
  void build_dense();

  std::size_t dim_ = 0;
  std::string name_;
  std::vector<BipolarVector> vectors_;
  std::vector<std::int8_t> dense_;  // size() rows × dim() cols, ±1
};

/// The F codebooks of a factorization problem, e.g. {shape, color, v-pos, h-pos}.
class CodebookSet {
 public:
  CodebookSet() = default;

  /// F codebooks, each with M vectors of dimension D.
  CodebookSet(std::size_t dim, std::size_t factors, std::size_t size,
              util::Rng& rng);

  explicit CodebookSet(std::vector<Codebook> books);

  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] std::size_t factors() const { return books_.size(); }
  [[nodiscard]] const Codebook& book(std::size_t f) const { return books_[f]; }

  /// Compose a product vector s = x_{i1} ⊙ x_{i2} ⊙ ... from indices.
  [[nodiscard]] BipolarVector compose(const std::vector<std::size_t>& indices) const;

  /// Total search-space size ∏ M_f as double (can exceed 2^64).
  [[nodiscard]] double search_space() const;

 private:
  std::size_t dim_ = 0;
  std::vector<Codebook> books_;
};

}  // namespace h3dfact::hdc
