#pragma once
// Associative cleanup memory: maps a noisy hypervector back to the closest
// stored item. Used by the perception pipeline after factorization and by
// the examples.

#include <optional>
#include <string>
#include <vector>

#include "hdc/hypervector.hpp"

namespace h3dfact::hdc {

/// Query result: best-matching item plus the match statistics.
struct CleanupResult {
  std::size_t index = 0;
  std::string label;
  long long dot = 0;
  double cosine = 0.0;
};

/// Labelled item store with nearest-neighbour (max dot product) lookup.
class ItemMemory {
 public:
  explicit ItemMemory(std::size_t dim) : dim_(dim) {}

  /// Store an item; returns its index.
  std::size_t add(std::string label, BipolarVector v);

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] const BipolarVector& vector(std::size_t i) const { return items_[i]; }
  [[nodiscard]] const std::string& label(std::size_t i) const { return labels_[i]; }

  /// Index of a stored label, if present.
  [[nodiscard]] std::optional<std::size_t> find(const std::string& label) const;

  /// Nearest stored item to the query.
  [[nodiscard]] CleanupResult cleanup(const BipolarVector& query) const;

  /// Top-k nearest items, best first.
  [[nodiscard]] std::vector<CleanupResult> top_k(const BipolarVector& query,
                                                 std::size_t k) const;

 private:
  std::size_t dim_;
  std::vector<BipolarVector> items_;
  std::vector<std::string> labels_;
};

}  // namespace h3dfact::hdc
