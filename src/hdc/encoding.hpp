#pragma once
// Attribute-scene encoding (Fig. 1a): a visual object with F attributes
// (e.g. shape, color, vertical position, horizontal position) is encoded as
// the binding of one item vector per attribute.

#include <string>
#include <vector>

#include "hdc/codebook.hpp"
#include "hdc/hypervector.hpp"

namespace h3dfact::hdc {

/// One attribute dimension of a scene: a name plus its value vocabulary.
struct AttributeSpec {
  std::string name;                 ///< e.g. "shape"
  std::vector<std::string> values;  ///< e.g. {"circle", "triangle", ...}
};

/// An object instance: one chosen value index per attribute.
struct SceneObject {
  std::vector<std::size_t> attribute_indices;
};

/// Encoder from symbolic attribute scenes to product hypervectors and back.
class SceneEncoder {
 public:
  /// Build codebooks (one per attribute) from the given specs.
  SceneEncoder(std::size_t dim, std::vector<AttributeSpec> specs, util::Rng& rng);

  [[nodiscard]] std::size_t dim() const { return set_.dim(); }
  [[nodiscard]] std::size_t attributes() const { return specs_.size(); }
  [[nodiscard]] const AttributeSpec& spec(std::size_t f) const { return specs_[f]; }
  [[nodiscard]] const CodebookSet& codebooks() const { return set_; }

  /// Product vector s = ⊙_f x_f[object.attribute_indices[f]].
  [[nodiscard]] BipolarVector encode(const SceneObject& object) const;

  /// Per-attribute value labels for a decoded index assignment.
  [[nodiscard]] std::vector<std::string> labels(
      const std::vector<std::size_t>& indices) const;

  /// Random object (uniform over each attribute vocabulary).
  [[nodiscard]] SceneObject random_object(util::Rng& rng) const;

 private:
  std::vector<AttributeSpec> specs_;
  CodebookSet set_;
};

/// The four-attribute visual-object schema used throughout the paper's
/// examples (Fig. 1a): shape, color, vertical position, horizontal position.
std::vector<AttributeSpec> visual_object_schema();

}  // namespace h3dfact::hdc
