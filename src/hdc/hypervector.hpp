#pragma once
// Bipolar hypervectors x ∈ {−1,+1}^D (Sec. II-A of the paper).
//
// Storage is bit-packed into 64-bit words: bit b=0 encodes +1, b=1 encodes −1
// (value = 1 − 2b). With this convention, binding (element-wise multiplication)
// is XOR and the dot product is D − 2·popcount(x XOR y), which is what the
// CIM macro's "−1's counter + adder" peripheral computes in hardware
// (Sec. III-A). All hot loops in the resonator run on this representation.

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace h3dfact::hdc {

/// Dense bipolar hypervector with bit-packed storage.
class BipolarVector {
 public:
  BipolarVector() = default;

  /// All-(+1) vector of the given dimension.
  explicit BipolarVector(std::size_t dim);

  /// Construct from explicit ±1 values.
  static BipolarVector from_values(const std::vector<int>& values);

  /// I.i.d. uniform random bipolar vector (item vector generation).
  static BipolarVector random(std::size_t dim, util::Rng& rng);

  /// Rebuild from packed words (deserialization). `words` must hold exactly
  /// ceil(dim/64) entries; tail bits beyond `dim` are masked off.
  static BipolarVector from_words(std::size_t dim,
                                  const std::uint64_t* words,
                                  std::size_t n_words);

  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] std::size_t words() const { return words_.size(); }
  [[nodiscard]] const std::uint64_t* data() const { return words_.data(); }
  [[nodiscard]] std::uint64_t* data() { return words_.data(); }

  /// Element access: returns −1 or +1.
  [[nodiscard]] int get(std::size_t i) const;
  void set(std::size_t i, int value);

  /// Element-wise multiplication (binding / unbinding): this ⊙ other.
  [[nodiscard]] BipolarVector bind(const BipolarVector& other) const;

  /// In-place binding.
  void bind_inplace(const BipolarVector& other);

  /// Integer dot product ⟨this, other⟩ ∈ [−D, D].
  [[nodiscard]] long long dot(const BipolarVector& other) const;

  /// Cosine similarity = dot / D.
  [[nodiscard]] double cosine(const BipolarVector& other) const;

  /// Normalized Hamming distance in [0,1].
  [[nodiscard]] double hamming(const BipolarVector& other) const;

  /// Cyclic permutation ρ^k (rotate elements by k positions).
  [[nodiscard]] BipolarVector permute(long long k) const;

  /// Element-wise negation.
  [[nodiscard]] BipolarVector negate() const;

  /// Flip each element independently with probability p (query/channel noise).
  [[nodiscard]] BipolarVector with_flips(double p, util::Rng& rng) const;

  /// Flip exactly n distinct randomly chosen elements.
  [[nodiscard]] BipolarVector with_exact_flips(std::size_t n, util::Rng& rng) const;

  /// Unpack to a ±1 integer vector.
  [[nodiscard]] std::vector<int> to_values() const;

  /// Unpack to ±1 int8 (row format used by the projection kernel).
  [[nodiscard]] std::vector<std::int8_t> to_i8() const;

  /// 64-bit content hash (used by the limit-cycle detector).
  [[nodiscard]] std::uint64_t hash() const;

  bool operator==(const BipolarVector& other) const;

 private:
  void mask_tail();

  std::size_t dim_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Element-wise sign of integer counts with deterministic +1 tie-break.
BipolarVector sign_of(const std::vector<int>& counts);

/// Element-wise sign with random tie-break (used when counts can be 0).
BipolarVector sign_of(const std::vector<int>& counts, util::Rng& rng);

}  // namespace h3dfact::hdc
