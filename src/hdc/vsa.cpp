#include "hdc/vsa.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace h3dfact::hdc {

BipolarVector bind_all(const std::vector<BipolarVector>& vs) {
  if (vs.empty()) throw std::invalid_argument("bind_all of empty list");
  BipolarVector out = vs.front();
  for (std::size_t i = 1; i < vs.size(); ++i) out.bind_inplace(vs[i]);
  return out;
}

namespace {
std::vector<int> sum_counts(const std::vector<BipolarVector>& vs) {
  if (vs.empty()) throw std::invalid_argument("bundle of empty list");
  const std::size_t dim = vs.front().dim();
  std::vector<int> counts(dim, 0);
  for (const auto& v : vs) {
    if (v.dim() != dim) throw std::invalid_argument("bundle dim mismatch");
    for (std::size_t d = 0; d < dim; ++d) counts[d] += v.get(d);
  }
  return counts;
}
}  // namespace

BipolarVector bundle(const std::vector<BipolarVector>& vs) {
  return sign_of(sum_counts(vs));
}

BipolarVector bundle(const std::vector<BipolarVector>& vs, util::Rng& rng) {
  return sign_of(sum_counts(vs), rng);
}

BipolarVector bundle_weighted(const std::vector<BipolarVector>& vs,
                              const std::vector<int>& weights) {
  if (vs.size() != weights.size()) {
    throw std::invalid_argument("bundle_weighted size mismatch");
  }
  if (vs.empty()) throw std::invalid_argument("bundle_weighted of empty list");
  const std::size_t dim = vs.front().dim();
  std::vector<int> counts(dim, 0);
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (vs[i].dim() != dim) throw std::invalid_argument("bundle dim mismatch");
    for (std::size_t d = 0; d < dim; ++d) counts[d] += weights[i] * vs[i].get(d);
  }
  return sign_of(counts);
}

BipolarVector encode_sequence(const std::vector<BipolarVector>& vs) {
  if (vs.empty()) throw std::invalid_argument("encode_sequence of empty list");
  BipolarVector out = vs.front();  // ρ^0(v0)
  for (std::size_t i = 1; i < vs.size(); ++i) {
    out.bind_inplace(vs[i].permute(static_cast<long long>(i)));
  }
  return out;
}

double quasi_orthogonality_z(double cosine, std::size_t dim) {
  // For random bipolar vectors, dot/D has mean 0 and stddev 1/sqrt(D).
  return cosine * std::sqrt(static_cast<double>(dim));
}

}  // namespace h3dfact::hdc
