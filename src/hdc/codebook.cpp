#include "hdc/codebook.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

// All arithmetic routes through the multi-ISA kernel backend layer
// (scalar/SSE2/AVX2/AVX-512/NEON, capability-scored at runtime): see
// hdc/kernels/backend.hpp. Batched entry points additionally consult the
// kernel policy (per-call vs tiled crossover) and fan large passes across
// the process-wide KernelPool — bit-identical at any thread count by the
// pool's determinism contract.
#include "hdc/kernels/backend.hpp"
#include "hdc/kernels/policy.hpp"
#include "hdc/kernels/thread_pool.hpp"

namespace h3dfact::hdc {

std::vector<int> CoeffBlock::item(std::size_t b) const {
  std::vector<int> out(size);
  for (std::size_t i = 0; i < size; ++i) out[i] = data[i * batch + b];
  return out;
}

void CoeffBlock::set_item(std::size_t b, const std::vector<int>& values) {
  if (values.size() != size) {
    throw std::invalid_argument("CoeffBlock item length mismatch");
  }
  for (std::size_t i = 0; i < size; ++i) data[i * batch + b] = values[i];
}

CoeffBlock CoeffBlock::from_items(const std::vector<std::vector<int>>& items) {
  CoeffBlock block;
  if (items.empty()) return block;
  block = CoeffBlock(items.front().size(), items.size());
  for (std::size_t b = 0; b < items.size(); ++b) block.set_item(b, items[b]);
  return block;
}

Codebook::Codebook(std::size_t dim, std::size_t size, util::Rng& rng,
                   std::string name)
    : dim_(dim), name_(std::move(name)) {
  vectors_.reserve(size);
  for (std::size_t m = 0; m < size; ++m) {
    vectors_.push_back(BipolarVector::random(dim, rng));
  }
  build_dense();
}

Codebook::Codebook(std::vector<BipolarVector> vectors, std::string name)
    : name_(std::move(name)), vectors_(std::move(vectors)) {
  if (!vectors_.empty()) {
    dim_ = vectors_.front().dim();
    for (const auto& v : vectors_) {
      if (v.dim() != dim_) throw std::invalid_argument("codebook dim mismatch");
    }
  }
  build_dense();
}

Codebook Codebook::from_packed(std::size_t dim, std::size_t size,
                               const std::uint64_t* words, std::size_t n_words,
                               std::string name, bool borrow) {
  const std::size_t per_row = (dim + 63) / 64;
  if (n_words != size * per_row) {
    throw std::invalid_argument("from_packed: word count " +
                                std::to_string(n_words) + " != size*words " +
                                std::to_string(size * per_row));
  }
  Codebook book;
  book.dim_ = dim;
  book.name_ = std::move(name);
  book.vectors_.reserve(size);
  for (std::size_t m = 0; m < size; ++m) {
    book.vectors_.push_back(
        BipolarVector::from_words(dim, words + m * per_row, per_row));
  }
  book.build_dense();
  if (borrow) {
    // The kernels stream rows straight from the caller's block (mmap pages
    // shared read-only across workers); drop the just-built owned copy.
    book.packed_.clear();
    book.packed_.shrink_to_fit();
    book.packed_view_ = words;
  }
  return book;
}

void Codebook::build_dense() {
  dense_.resize(vectors_.size() * dim_);
  for (std::size_t m = 0; m < vectors_.size(); ++m) {
    auto row = vectors_[m].to_i8();
    std::copy(row.begin(), row.end(), dense_.begin() + static_cast<std::ptrdiff_t>(m * dim_));
  }
  words_ = vectors_.empty() ? 0 : vectors_.front().words();
  packed_.resize(vectors_.size() * words_);
  for (std::size_t m = 0; m < vectors_.size(); ++m) {
    std::copy(vectors_[m].data(), vectors_[m].data() + words_,
              packed_.begin() + static_cast<std::ptrdiff_t>(m * words_));
  }
}

std::vector<int> Codebook::similarity(const BipolarVector& u) const {
  return similarity(u, kernels::active());
}

std::vector<int> Codebook::similarity(
    const BipolarVector& u, const kernels::KernelBackend& backend) const {
  if (u.dim() != dim_) throw std::invalid_argument("dim mismatch in similarity");
  std::vector<int> a(vectors_.size());
  const std::uint64_t* uw = u.data();
  backend.similarity_tile(packed_data(), words_, vectors_.size(), &uw, 1,
                          words_, static_cast<long long>(dim_), a.data(), 1);
  return a;
}

std::vector<int> Codebook::project(const std::vector<int>& coeffs) const {
  return project(coeffs, kernels::active());
}

std::vector<int> Codebook::project(
    const std::vector<int>& coeffs,
    const kernels::KernelBackend& backend) const {
  if (coeffs.size() != vectors_.size()) {
    throw std::invalid_argument("coefficient count mismatch in project");
  }
  std::vector<int> y(dim_, 0);
  for (std::size_t m = 0; m < vectors_.size(); ++m) {
    const int a = coeffs[m];
    if (a == 0) continue;
    backend.axpy_row(a, dense_.data() + m * dim_, y.data(), dim_);
  }
  return y;
}

CoeffBlock Codebook::similarity_batch(std::span<const BipolarVector> us) const {
  return similarity_batch(us, kernels::active());
}

CoeffBlock Codebook::similarity_batch(
    std::span<const BipolarVector> us,
    const kernels::KernelBackend& backend) const {
  CoeffBlock a(vectors_.size(), us.size());
  for (const auto& u : us) {
    if (u.dim() != dim_) {
      throw std::invalid_argument("dim mismatch in similarity_batch");
    }
  }
  const std::size_t kB = us.size();
  const std::size_t kM = vectors_.size();
  if (kB == 0 || kM == 0) return a;
  std::vector<const std::uint64_t*> queries(kB);
  for (std::size_t b = 0; b < kB; ++b) queries[b] = us[b].data();
  // The kernel policy picks the loop shape: below the crossover batch one
  // per-call pass streams all rows per query; at/above it a tile of codebook
  // rows stays L1-hot while every query of the batch is scored against it.
  // Either shape computes each sims[m][q] with the same exact integer
  // arithmetic, so the choice never changes results.
  const kernels::KernelPolicy& policy = kernels::active_policy();
  const bool tiled = kernels::use_tiled(policy, kB);
  auto score_rows = [&](std::size_t m_begin, std::size_t m_end) {
    if (!tiled) {
      backend.similarity_tile(packed_data() + m_begin * words_, words_,
                              m_end - m_begin, queries.data(), kB, words_,
                              static_cast<long long>(dim_),
                              a.data.data() + m_begin * kB, kB);
      return;
    }
    constexpr std::size_t kRowTile = 8;
    for (std::size_t m0 = m_begin; m0 < m_end; m0 += kRowTile) {
      const std::size_t m1 = std::min(m0 + kRowTile, m_end);
      backend.similarity_tile(packed_data() + m0 * words_, words_, m1 - m0,
                              queries.data(), kB, words_,
                              static_cast<long long>(dim_),
                              a.data.data() + m0 * kB, kB);
    }
  };
  // Row ranges write disjoint sims rows, so the pool's determinism contract
  // applies directly; small passes stay inline to skip the wake-up cost.
  if (kM * kB * words_ >= policy.parallel_min_work) {
    kernels::KernelPool::instance().parallel_for(kM, score_rows);
  } else {
    score_rows(0, kM);
  }
  return a;
}

CoeffBlock Codebook::project_batch(const CoeffBlock& coeffs) const {
  return project_batch(coeffs, kernels::active());
}

CoeffBlock Codebook::project_batch(
    const CoeffBlock& coeffs, const kernels::KernelBackend& backend) const {
  if (coeffs.size != vectors_.size()) {
    throw std::invalid_argument("coefficient count mismatch in project_batch");
  }
  const std::size_t kB = coeffs.batch;
  CoeffBlock y(dim_, kB);
  if (kB == 0) return y;
  // Batch-major scratch keeps each item's accumulator contiguous for the
  // row-axpy kernel; a dense row services the whole batch while L1-hot.
  std::vector<int> scratch(kB * dim_, 0);
  const kernels::KernelPolicy& policy = kernels::active_policy();
  const std::size_t kM = vectors_.size();
  if (kM * kB * dim_ >= policy.parallel_min_work && kB >= 2) {
    // Batch sub-ranges own disjoint batch-major scratch regions; within a
    // range the m-loop order is the sequential one, so accumulation order
    // per element is unchanged at any thread count.
    kernels::KernelPool::instance().parallel_for(
        kB, [&](std::size_t b0, std::size_t b1) {
          for (std::size_t m = 0; m < kM; ++m) {
            backend.project_tile(dense_.data() + m * dim_, dim_,
                                 coeffs.data.data() + m * kB + b0, b1 - b0,
                                 scratch.data() + b0 * dim_);
          }
        });
  } else if (kM * kB * dim_ >= policy.parallel_min_work) {
    // Single-item batch: slice the accumulator dimension instead, each
    // chunk running the same row-axpy sequence over its own span.
    kernels::KernelPool::instance().parallel_for(
        dim_, [&](std::size_t d0, std::size_t d1) {
          for (std::size_t m = 0; m < kM; ++m) {
            const int c = coeffs.data[m * kB];
            if (c == 0) continue;
            backend.axpy_row(c, dense_.data() + m * dim_ + d0,
                             scratch.data() + d0, d1 - d0);
          }
        });
  } else {
    for (std::size_t m = 0; m < kM; ++m) {
      backend.project_tile(dense_.data() + m * dim_, dim_,
                           coeffs.data.data() + m * kB, kB, scratch.data());
    }
  }
  for (std::size_t d = 0; d < dim_; ++d) {
    for (std::size_t b = 0; b < kB; ++b) {
      y.at(d, b) = scratch[b * dim_ + d];
    }
  }
  return y;
}

BipolarVector Codebook::resonate(const BipolarVector& u) const {
  return sign_of(project(similarity(u)));
}

std::size_t Codebook::nearest(const BipolarVector& u) const {
  if (vectors_.empty()) throw std::logic_error("nearest on empty codebook");
  auto sims = similarity(u);
  std::size_t best = 0;
  for (std::size_t m = 1; m < sims.size(); ++m) {
    if (sims[m] > sims[best]) best = m;
  }
  return best;
}

namespace {
std::vector<int> member_counts(const std::vector<BipolarVector>& vectors,
                               std::size_t dim) {
  std::vector<int> counts(dim, 0);
  for (const auto& v : vectors) {
    for (std::size_t d = 0; d < dim; ++d) counts[d] += v.get(d);
  }
  return counts;
}
}  // namespace

BipolarVector Codebook::superposition() const {
  return sign_of(member_counts(vectors_, dim_));
}

BipolarVector Codebook::superposition(util::Rng& rng) const {
  return sign_of(member_counts(vectors_, dim_), rng);
}

CodebookSet::CodebookSet(std::size_t dim, std::size_t factors, std::size_t size,
                         util::Rng& rng)
    : dim_(dim) {
  books_.reserve(factors);
  for (std::size_t f = 0; f < factors; ++f) {
    books_.emplace_back(dim, size, rng, "factor" + std::to_string(f));
  }
}

CodebookSet::CodebookSet(std::vector<Codebook> books) : books_(std::move(books)) {
  if (!books_.empty()) {
    dim_ = books_.front().dim();
    for (const auto& b : books_) {
      if (b.dim() != dim_) throw std::invalid_argument("codebook set dim mismatch");
    }
  }
}

BipolarVector CodebookSet::compose(const std::vector<std::size_t>& indices) const {
  if (indices.size() != books_.size()) {
    throw std::invalid_argument("index count must equal factor count");
  }
  BipolarVector s = books_[0].vector(indices[0]);
  for (std::size_t f = 1; f < books_.size(); ++f) {
    s.bind_inplace(books_[f].vector(indices[f]));
  }
  return s;
}

double CodebookSet::search_space() const {
  double total = 1.0;
  for (const auto& b : books_) total *= static_cast<double>(b.size());
  return total;
}

std::uint64_t set_fingerprint(const CodebookSet& set) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix64 = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  mix64(set.dim());
  mix64(set.factors());
  for (std::size_t f = 0; f < set.factors(); ++f) {
    const Codebook& book = set.book(f);
    mix64(book.size());
    for (std::size_t m = 0; m < book.size(); ++m) {
      const BipolarVector& v = book.vector(m);
      for (std::size_t w = 0; w < v.words(); ++w) mix64(v.data()[w]);
    }
  }
  return h;
}

}  // namespace h3dfact::hdc
