#include "hdc/codebook.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace h3dfact::hdc {

Codebook::Codebook(std::size_t dim, std::size_t size, util::Rng& rng,
                   std::string name)
    : dim_(dim), name_(std::move(name)) {
  vectors_.reserve(size);
  for (std::size_t m = 0; m < size; ++m) {
    vectors_.push_back(BipolarVector::random(dim, rng));
  }
  build_dense();
}

Codebook::Codebook(std::vector<BipolarVector> vectors, std::string name)
    : name_(std::move(name)), vectors_(std::move(vectors)) {
  if (!vectors_.empty()) {
    dim_ = vectors_.front().dim();
    for (const auto& v : vectors_) {
      if (v.dim() != dim_) throw std::invalid_argument("codebook dim mismatch");
    }
  }
  build_dense();
}

void Codebook::build_dense() {
  dense_.resize(vectors_.size() * dim_);
  for (std::size_t m = 0; m < vectors_.size(); ++m) {
    auto row = vectors_[m].to_i8();
    std::copy(row.begin(), row.end(), dense_.begin() + static_cast<std::ptrdiff_t>(m * dim_));
  }
}

std::vector<int> Codebook::similarity(const BipolarVector& u) const {
  if (u.dim() != dim_) throw std::invalid_argument("dim mismatch in similarity");
  std::vector<int> a(vectors_.size());
  const std::uint64_t* uw = u.data();
  const std::size_t nw = u.words();
  for (std::size_t m = 0; m < vectors_.size(); ++m) {
    const std::uint64_t* xw = vectors_[m].data();
    long long disagree = 0;
    for (std::size_t w = 0; w < nw; ++w) disagree += std::popcount(uw[w] ^ xw[w]);
    a[m] = static_cast<int>(static_cast<long long>(dim_) - 2 * disagree);
  }
  return a;
}

std::vector<int> Codebook::project(const std::vector<int>& coeffs) const {
  if (coeffs.size() != vectors_.size()) {
    throw std::invalid_argument("coefficient count mismatch in project");
  }
  std::vector<int> y(dim_, 0);
  for (std::size_t m = 0; m < vectors_.size(); ++m) {
    const int a = coeffs[m];
    if (a == 0) continue;
    const std::int8_t* row = dense_.data() + m * dim_;
    int* out = y.data();
    for (std::size_t d = 0; d < dim_; ++d) out[d] += a * row[d];
  }
  return y;
}

BipolarVector Codebook::resonate(const BipolarVector& u) const {
  return sign_of(project(similarity(u)));
}

std::size_t Codebook::nearest(const BipolarVector& u) const {
  if (vectors_.empty()) throw std::logic_error("nearest on empty codebook");
  auto sims = similarity(u);
  std::size_t best = 0;
  for (std::size_t m = 1; m < sims.size(); ++m) {
    if (sims[m] > sims[best]) best = m;
  }
  return best;
}

namespace {
std::vector<int> member_counts(const std::vector<BipolarVector>& vectors,
                               std::size_t dim) {
  std::vector<int> counts(dim, 0);
  for (const auto& v : vectors) {
    for (std::size_t d = 0; d < dim; ++d) counts[d] += v.get(d);
  }
  return counts;
}
}  // namespace

BipolarVector Codebook::superposition() const {
  return sign_of(member_counts(vectors_, dim_));
}

BipolarVector Codebook::superposition(util::Rng& rng) const {
  return sign_of(member_counts(vectors_, dim_), rng);
}

CodebookSet::CodebookSet(std::size_t dim, std::size_t factors, std::size_t size,
                         util::Rng& rng)
    : dim_(dim) {
  books_.reserve(factors);
  for (std::size_t f = 0; f < factors; ++f) {
    books_.emplace_back(dim, size, rng, "factor" + std::to_string(f));
  }
}

CodebookSet::CodebookSet(std::vector<Codebook> books) : books_(std::move(books)) {
  if (!books_.empty()) {
    dim_ = books_.front().dim();
    for (const auto& b : books_) {
      if (b.dim() != dim_) throw std::invalid_argument("codebook set dim mismatch");
    }
  }
}

BipolarVector CodebookSet::compose(const std::vector<std::size_t>& indices) const {
  if (indices.size() != books_.size()) {
    throw std::invalid_argument("index count must equal factor count");
  }
  BipolarVector s = books_[0].vector(indices[0]);
  for (std::size_t f = 1; f < books_.size(); ++f) {
    s.bind_inplace(books_[f].vector(indices[f]));
  }
  return s;
}

double CodebookSet::search_space() const {
  double total = 1.0;
  for (const auto& b : books_) total *= static_cast<double>(b.size());
  return total;
}

}  // namespace h3dfact::hdc
