#include "hdc/codebook.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

// Both the per-call and the batched kernels runtime-dispatch onto AVX2 where
// the CPU supports it; the build itself stays at the baseline ISA so the
// binaries remain portable.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define H3DFACT_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace h3dfact::hdc {

namespace {

#if defined(H3DFACT_X86_DISPATCH)

bool cpu_has_avx2() {
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
}

// popcount(a XOR b) over nw words via the nibble-LUT (Mula) algorithm:
// 32 bytes per step, byte counts reduced with SAD against zero.
__attribute__((target("avx2"))) long long xor_popcount_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t nw) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + 4 <= nw; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    const __m256i x = _mm256_xor_si256(va, vb);
    const __m256i lo = _mm256_and_si256(x, low);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(x, 4), low);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                        _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  long long total =
      static_cast<long long>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; w < nw; ++w) total += std::popcount(a[w] ^ b[w]);
  return total;
}

// y[0..n) += a * row[0..n) with ±1 int8 rows widened to i32.
__attribute__((target("avx2"))) void axpy_row_avx2(int a,
                                                   const std::int8_t* row,
                                                   int* y, std::size_t n) {
  const __m256i va = _mm256_set1_epi32(a);
  std::size_t d = 0;
  for (; d + 8 <= n; d += 8) {
    const __m128i r8 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(row + d));
    const __m256i r32 = _mm256_cvtepi8_epi32(r8);
    __m256i yv = _mm256_loadu_si256(reinterpret_cast<__m256i*>(y + d));
    yv = _mm256_add_epi32(yv, _mm256_mullo_epi32(va, r32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + d), yv);
  }
  for (; d < n; ++d) y[d] += a * row[d];
}

#endif  // H3DFACT_X86_DISPATCH

long long xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                       std::size_t nw) {
#if defined(H3DFACT_X86_DISPATCH)
  if (cpu_has_avx2()) return xor_popcount_avx2(a, b, nw);
#endif
  long long disagree = 0;
  for (std::size_t w = 0; w < nw; ++w) disagree += std::popcount(a[w] ^ b[w]);
  return disagree;
}

void axpy_row(int a, const std::int8_t* row, int* y, std::size_t n) {
#if defined(H3DFACT_X86_DISPATCH)
  if (cpu_has_avx2()) {
    axpy_row_avx2(a, row, y, n);
    return;
  }
#endif
  for (std::size_t d = 0; d < n; ++d) y[d] += a * row[d];
}

}  // namespace

std::vector<int> CoeffBlock::item(std::size_t b) const {
  std::vector<int> out(size);
  for (std::size_t i = 0; i < size; ++i) out[i] = data[i * batch + b];
  return out;
}

void CoeffBlock::set_item(std::size_t b, const std::vector<int>& values) {
  if (values.size() != size) {
    throw std::invalid_argument("CoeffBlock item length mismatch");
  }
  for (std::size_t i = 0; i < size; ++i) data[i * batch + b] = values[i];
}

CoeffBlock CoeffBlock::from_items(const std::vector<std::vector<int>>& items) {
  CoeffBlock block;
  if (items.empty()) return block;
  block = CoeffBlock(items.front().size(), items.size());
  for (std::size_t b = 0; b < items.size(); ++b) block.set_item(b, items[b]);
  return block;
}

Codebook::Codebook(std::size_t dim, std::size_t size, util::Rng& rng,
                   std::string name)
    : dim_(dim), name_(std::move(name)) {
  vectors_.reserve(size);
  for (std::size_t m = 0; m < size; ++m) {
    vectors_.push_back(BipolarVector::random(dim, rng));
  }
  build_dense();
}

Codebook::Codebook(std::vector<BipolarVector> vectors, std::string name)
    : name_(std::move(name)), vectors_(std::move(vectors)) {
  if (!vectors_.empty()) {
    dim_ = vectors_.front().dim();
    for (const auto& v : vectors_) {
      if (v.dim() != dim_) throw std::invalid_argument("codebook dim mismatch");
    }
  }
  build_dense();
}

void Codebook::build_dense() {
  dense_.resize(vectors_.size() * dim_);
  for (std::size_t m = 0; m < vectors_.size(); ++m) {
    auto row = vectors_[m].to_i8();
    std::copy(row.begin(), row.end(), dense_.begin() + static_cast<std::ptrdiff_t>(m * dim_));
  }
}

std::vector<int> Codebook::similarity(const BipolarVector& u) const {
  if (u.dim() != dim_) throw std::invalid_argument("dim mismatch in similarity");
  std::vector<int> a(vectors_.size());
  const std::uint64_t* uw = u.data();
  const std::size_t nw = u.words();
  for (std::size_t m = 0; m < vectors_.size(); ++m) {
    const long long disagree = xor_popcount(uw, vectors_[m].data(), nw);
    a[m] = static_cast<int>(static_cast<long long>(dim_) - 2 * disagree);
  }
  return a;
}

std::vector<int> Codebook::project(const std::vector<int>& coeffs) const {
  if (coeffs.size() != vectors_.size()) {
    throw std::invalid_argument("coefficient count mismatch in project");
  }
  std::vector<int> y(dim_, 0);
  for (std::size_t m = 0; m < vectors_.size(); ++m) {
    const int a = coeffs[m];
    if (a == 0) continue;
    axpy_row(a, dense_.data() + m * dim_, y.data(), dim_);
  }
  return y;
}

CoeffBlock Codebook::similarity_batch(std::span<const BipolarVector> us) const {
  CoeffBlock a(vectors_.size(), us.size());
  for (const auto& u : us) {
    if (u.dim() != dim_) {
      throw std::invalid_argument("dim mismatch in similarity_batch");
    }
  }
  const std::size_t kB = us.size();
  const std::size_t kM = vectors_.size();
  // A tile of codebook rows stays L1-hot while every query of the batch is
  // scored against it; the per-call path re-streams the whole codebook once
  // per query instead.
  constexpr std::size_t kRowTile = 8;
  for (std::size_t m0 = 0; m0 < kM; m0 += kRowTile) {
    const std::size_t m1 = std::min(m0 + kRowTile, kM);
    for (std::size_t b = 0; b < kB; ++b) {
      const std::uint64_t* uw = us[b].data();
      const std::size_t nw = us[b].words();
      for (std::size_t m = m0; m < m1; ++m) {
        const long long disagree = xor_popcount(uw, vectors_[m].data(), nw);
        a.at(m, b) =
            static_cast<int>(static_cast<long long>(dim_) - 2 * disagree);
      }
    }
  }
  return a;
}

CoeffBlock Codebook::project_batch(const CoeffBlock& coeffs) const {
  if (coeffs.size != vectors_.size()) {
    throw std::invalid_argument("coefficient count mismatch in project_batch");
  }
  const std::size_t kB = coeffs.batch;
  CoeffBlock y(dim_, kB);
  if (kB == 0) return y;
  // Batch-major scratch keeps each item's accumulator contiguous for the
  // row-axpy kernel; a dense row services the whole batch while L1-hot.
  std::vector<int> scratch(kB * dim_, 0);
  for (std::size_t m = 0; m < vectors_.size(); ++m) {
    const std::int8_t* row = dense_.data() + m * dim_;
    for (std::size_t b = 0; b < kB; ++b) {
      const int c = coeffs.at(m, b);
      if (c == 0) continue;
      axpy_row(c, row, scratch.data() + b * dim_, dim_);
    }
  }
  for (std::size_t d = 0; d < dim_; ++d) {
    for (std::size_t b = 0; b < kB; ++b) {
      y.at(d, b) = scratch[b * dim_ + d];
    }
  }
  return y;
}

BipolarVector Codebook::resonate(const BipolarVector& u) const {
  return sign_of(project(similarity(u)));
}

std::size_t Codebook::nearest(const BipolarVector& u) const {
  if (vectors_.empty()) throw std::logic_error("nearest on empty codebook");
  auto sims = similarity(u);
  std::size_t best = 0;
  for (std::size_t m = 1; m < sims.size(); ++m) {
    if (sims[m] > sims[best]) best = m;
  }
  return best;
}

namespace {
std::vector<int> member_counts(const std::vector<BipolarVector>& vectors,
                               std::size_t dim) {
  std::vector<int> counts(dim, 0);
  for (const auto& v : vectors) {
    for (std::size_t d = 0; d < dim; ++d) counts[d] += v.get(d);
  }
  return counts;
}
}  // namespace

BipolarVector Codebook::superposition() const {
  return sign_of(member_counts(vectors_, dim_));
}

BipolarVector Codebook::superposition(util::Rng& rng) const {
  return sign_of(member_counts(vectors_, dim_), rng);
}

CodebookSet::CodebookSet(std::size_t dim, std::size_t factors, std::size_t size,
                         util::Rng& rng)
    : dim_(dim) {
  books_.reserve(factors);
  for (std::size_t f = 0; f < factors; ++f) {
    books_.emplace_back(dim, size, rng, "factor" + std::to_string(f));
  }
}

CodebookSet::CodebookSet(std::vector<Codebook> books) : books_(std::move(books)) {
  if (!books_.empty()) {
    dim_ = books_.front().dim();
    for (const auto& b : books_) {
      if (b.dim() != dim_) throw std::invalid_argument("codebook set dim mismatch");
    }
  }
}

BipolarVector CodebookSet::compose(const std::vector<std::size_t>& indices) const {
  if (indices.size() != books_.size()) {
    throw std::invalid_argument("index count must equal factor count");
  }
  BipolarVector s = books_[0].vector(indices[0]);
  for (std::size_t f = 1; f < books_.size(); ++f) {
    s.bind_inplace(books_[f].vector(indices[f]));
  }
  return s;
}

double CodebookSet::search_space() const {
  double total = 1.0;
  for (const auto& b : books_) total *= static_cast<double>(b.size());
  return total;
}

}  // namespace h3dfact::hdc
