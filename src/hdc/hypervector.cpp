#include "hdc/hypervector.hpp"

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace h3dfact::hdc {

namespace {
std::size_t words_for(std::size_t dim) { return (dim + 63) / 64; }
}  // namespace

BipolarVector::BipolarVector(std::size_t dim)
    : dim_(dim), words_(words_for(dim), 0) {}

BipolarVector BipolarVector::from_values(const std::vector<int>& values) {
  BipolarVector v(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] != 1 && values[i] != -1) {
      throw std::invalid_argument("bipolar values must be +1 or -1");
    }
    v.set(i, values[i]);
  }
  return v;
}

BipolarVector BipolarVector::random(std::size_t dim, util::Rng& rng) {
  BipolarVector v(dim);
  for (auto& w : v.words_) w = rng.bits64();
  v.mask_tail();
  return v;
}

BipolarVector BipolarVector::from_words(std::size_t dim,
                                        const std::uint64_t* words,
                                        std::size_t n_words) {
  if (n_words != words_for(dim)) {
    throw std::invalid_argument("from_words: word count does not match dim");
  }
  BipolarVector v(dim);
  for (std::size_t w = 0; w < n_words; ++w) v.words_[w] = words[w];
  v.mask_tail();
  return v;
}

int BipolarVector::get(std::size_t i) const {
  const std::uint64_t bit = (words_[i / 64] >> (i % 64)) & 1ULL;
  return bit ? -1 : 1;
}

void BipolarVector::set(std::size_t i, int value) {
  const std::uint64_t mask = 1ULL << (i % 64);
  if (value == -1) {
    words_[i / 64] |= mask;
  } else {
    words_[i / 64] &= ~mask;
  }
}

BipolarVector BipolarVector::bind(const BipolarVector& other) const {
  if (dim_ != other.dim_) throw std::invalid_argument("dim mismatch in bind");
  BipolarVector out(dim_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    out.words_[w] = words_[w] ^ other.words_[w];
  }
  return out;
}

void BipolarVector::bind_inplace(const BipolarVector& other) {
  if (dim_ != other.dim_) throw std::invalid_argument("dim mismatch in bind");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= other.words_[w];
}

long long BipolarVector::dot(const BipolarVector& other) const {
  if (dim_ != other.dim_) throw std::invalid_argument("dim mismatch in dot");
  long long disagree = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    disagree += std::popcount(words_[w] ^ other.words_[w]);
  }
  // agreements - disagreements = D - 2*disagreements (the −1's counter law).
  return static_cast<long long>(dim_) - 2 * disagree;
}

double BipolarVector::cosine(const BipolarVector& other) const {
  if (dim_ == 0) return 0.0;
  return static_cast<double>(dot(other)) / static_cast<double>(dim_);
}

double BipolarVector::hamming(const BipolarVector& other) const {
  if (dim_ != other.dim_) throw std::invalid_argument("dim mismatch in hamming");
  if (dim_ == 0) return 0.0;
  long long disagree = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    disagree += std::popcount(words_[w] ^ other.words_[w]);
  }
  return static_cast<double>(disagree) / static_cast<double>(dim_);
}

BipolarVector BipolarVector::permute(long long k) const {
  BipolarVector out(dim_);
  if (dim_ == 0) return out;
  const auto d = static_cast<long long>(dim_);
  long long shift = ((k % d) + d) % d;
  for (std::size_t i = 0; i < dim_; ++i) {
    const std::size_t j = (i + static_cast<std::size_t>(shift)) % dim_;
    out.set(j, get(i));
  }
  return out;
}

BipolarVector BipolarVector::negate() const {
  BipolarVector out(dim_);
  for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] = ~words_[w];
  out.mask_tail();
  return out;
}

BipolarVector BipolarVector::with_flips(double p, util::Rng& rng) const {
  BipolarVector out = *this;
  for (std::size_t i = 0; i < dim_; ++i) {
    if (rng.bernoulli(p)) out.words_[i / 64] ^= (1ULL << (i % 64));
  }
  return out;
}

BipolarVector BipolarVector::with_exact_flips(std::size_t n, util::Rng& rng) const {
  if (n > dim_) throw std::invalid_argument("cannot flip more elements than dim");
  // Floyd's sampling of n distinct indices.
  BipolarVector out = *this;
  std::vector<bool> chosen(dim_, false);
  for (std::size_t j = dim_ - n; j < dim_; ++j) {
    auto t = static_cast<std::size_t>(rng.below(j + 1));
    std::size_t pick = chosen[t] ? j : t;
    chosen[pick] = true;
    out.words_[pick / 64] ^= (1ULL << (pick % 64));
  }
  return out;
}

std::vector<int> BipolarVector::to_values() const {
  std::vector<int> out(dim_);
  for (std::size_t i = 0; i < dim_; ++i) out[i] = get(i);
  return out;
}

std::vector<std::int8_t> BipolarVector::to_i8() const {
  std::vector<std::int8_t> out(dim_);
  for (std::size_t i = 0; i < dim_; ++i) out[i] = static_cast<std::int8_t>(get(i));
  return out;
}

std::uint64_t BipolarVector::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ dim_;
  for (std::uint64_t w : words_) {
    h ^= w;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  }
  return h;
}

bool BipolarVector::operator==(const BipolarVector& other) const {
  return dim_ == other.dim_ && words_ == other.words_;
}

void BipolarVector::mask_tail() {
  const std::size_t rem = dim_ % 64;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (1ULL << rem) - 1;
  }
}

BipolarVector sign_of(const std::vector<int>& counts) {
  BipolarVector v(counts.size());
  std::uint64_t* words = v.data();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    // bit 1 encodes −1; ties (zero) break to +1 (bit 0).
    words[i / 64] |= static_cast<std::uint64_t>(counts[i] < 0) << (i % 64);
  }
  return v;
}

BipolarVector sign_of(const std::vector<int>& counts, util::Rng& rng) {
  BipolarVector v(counts.size());
  std::uint64_t* words = v.data();
  // Random bits for tie-breaks are drawn 64 at a time: early resonator
  // iterations can produce all-zero projections (every element tied), and a
  // per-element generator call would dominate the activation phase.
  std::uint64_t rnd = 0;
  int rnd_left = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const int c = counts[i];
    std::uint64_t bit;
    if (c != 0) {
      bit = static_cast<std::uint64_t>(c < 0);
    } else {
      if (rnd_left == 0) {
        rnd = rng.bits64();
        rnd_left = 64;
      }
      bit = rnd & 1u;
      rnd >>= 1;
      --rnd_left;
    }
    words[i / 64] |= bit << (i % 64);
  }
  return v;
}

}  // namespace h3dfact::hdc
