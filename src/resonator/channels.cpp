#include "resonator/channels.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace h3dfact::resonator {

std::vector<int> ExactChannel::apply(const std::vector<int>& exact,
                                     util::Rng&) const {
  return exact;
}

GaussianChannel::GaussianChannel(double sigma) : sigma_(sigma) {
  if (sigma < 0.0) throw std::invalid_argument("negative noise sigma");
}

std::vector<int> GaussianChannel::apply(const std::vector<int>& exact,
                                        util::Rng& rng) const {
  std::vector<int> out(exact.size());
  for (std::size_t m = 0; m < exact.size(); ++m) {
    out[m] = static_cast<int>(std::lround(exact[m] + rng.gaussian(0.0, sigma_)));
  }
  return out;
}

std::string GaussianChannel::describe() const {
  std::ostringstream ss;
  ss << "gaussian(sigma=" << sigma_ << ")";
  return ss.str();
}

AdcChannel::AdcChannel(int bits, double clip, bool signed_range)
    : bits_(bits), clip_(clip), signed_(signed_range) {
  if (bits < 1 || bits > 16) throw std::invalid_argument("ADC bits out of range");
  if (clip <= 0.0) throw std::invalid_argument("ADC clip must be positive");
  max_code_ = signed_ ? (1 << (bits - 1)) - 1   // e.g. 7 for 4-bit signed
                      : (1 << bits) - 1;        // e.g. 15 for 4-bit unsigned
  step_ = clip_ / static_cast<double>(max_code_);
}

int AdcChannel::quantize(double v) const {
  const double code = std::round(v / step_);
  const double lo = signed_ ? -max_code_ : 0;
  return static_cast<int>(std::clamp<double>(code, lo, max_code_));
}

std::vector<int> AdcChannel::apply(const std::vector<int>& exact,
                                   util::Rng&) const {
  std::vector<int> out(exact.size());
  for (std::size_t m = 0; m < exact.size(); ++m) out[m] = quantize(exact[m]);
  return out;
}

std::string AdcChannel::describe() const {
  std::ostringstream ss;
  ss << "adc(bits=" << bits_ << ", clip=" << clip_
     << (signed_ ? ", signed" : ", unsigned") << ")";
  return ss.str();
}

ThresholdChannel::ThresholdChannel(double threshold) : threshold_(threshold) {
  if (threshold < 0.0) throw std::invalid_argument("negative threshold");
}

std::vector<int> ThresholdChannel::apply(const std::vector<int>& exact,
                                         util::Rng&) const {
  std::vector<int> out(exact.size());
  for (std::size_t m = 0; m < exact.size(); ++m) {
    out[m] = std::abs(static_cast<double>(exact[m])) < threshold_ ? 0 : exact[m];
  }
  return out;
}

std::string ThresholdChannel::describe() const {
  std::ostringstream ss;
  ss << "threshold(theta=" << threshold_ << ")";
  return ss.str();
}

TopKChannel::TopKChannel(std::size_t k) : k_(k) {
  if (k == 0) throw std::invalid_argument("top-k channel needs k >= 1");
}

std::vector<int> TopKChannel::apply(const std::vector<int>& exact,
                                    util::Rng&) const {
  if (exact.size() <= k_) return exact;
  // Find the k-th largest value via a partial copy (M is small).
  std::vector<int> sorted = exact;
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(k_ - 1),
                   sorted.end(), std::greater<int>());
  const int kth = sorted[k_ - 1];
  std::vector<int> out(exact.size(), 0);
  std::size_t kept = 0;
  for (std::size_t m = 0; m < exact.size() && kept < k_; ++m) {
    if (exact[m] > kth) {
      out[m] = exact[m];
      ++kept;
    }
  }
  for (std::size_t m = 0; m < exact.size() && kept < k_; ++m) {
    if (exact[m] == kth && out[m] == 0) {
      out[m] = exact[m];
      ++kept;
    }
  }
  return out;
}

std::string TopKChannel::describe() const {
  std::ostringstream ss;
  ss << "topk(k=" << k_ << ")";
  return ss.str();
}

CompositeChannel::CompositeChannel(
    std::vector<std::shared_ptr<const SimilarityChannel>> stages)
    : stages_(std::move(stages)) {
  if (stages_.empty()) throw std::invalid_argument("empty composite channel");
  for (const auto& s : stages_) {
    if (!s) throw std::invalid_argument("null stage in composite channel");
  }
}

std::vector<int> CompositeChannel::apply(const std::vector<int>& exact,
                                         util::Rng& rng) const {
  std::vector<int> v = exact;
  for (const auto& s : stages_) v = s->apply(v, rng);
  return v;
}

bool CompositeChannel::deterministic() const {
  return std::all_of(stages_.begin(), stages_.end(),
                     [](const auto& s) { return s->deterministic(); });
}

std::string CompositeChannel::describe() const {
  std::string out;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (i) out += " -> ";
    out += stages_[i]->describe();
  }
  return out;
}

std::shared_ptr<const SimilarityChannel> make_h3dfact_channel(
    std::size_t dim, int adc_bits, double sigma_frac, double clip_sigmas,
    double threshold_sigmas) {
  const double crosstalk = std::sqrt(static_cast<double>(dim));
  std::vector<std::shared_ptr<const SimilarityChannel>> stages;
  stages.push_back(std::make_shared<GaussianChannel>(sigma_frac * crosstalk));
  stages.push_back(std::make_shared<ThresholdChannel>(threshold_sigmas * crosstalk));
  // Rectified similarity path → unsigned ADC codes (Sec. IV-B).
  stages.push_back(std::make_shared<AdcChannel>(adc_bits, clip_sigmas * crosstalk,
                                                /*signed_range=*/false));
  return std::make_shared<CompositeChannel>(std::move(stages));
}

}  // namespace h3dfact::resonator
