#include "resonator/profiler.hpp"

#include <cstdint>
namespace h3dfact::resonator {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kUnbind: return "unbind";
    case Phase::kSimilarity: return "similarity";
    case Phase::kChannel: return "channel";
    case Phase::kProjection: return "projection";
    case Phase::kActivation: return "activation";
    case Phase::kDecode: return "decode";
  }
  return "?";
}

PhaseProfiler::Scope::Scope(PhaseProfiler* profiler, Phase phase)
    : profiler_(profiler), phase_(phase), start_(std::chrono::steady_clock::now()) {}

PhaseProfiler::Scope::~Scope() {
  if (profiler_ == nullptr) return;
  const auto end = std::chrono::steady_clock::now();
  profiler_->add_time(
      phase_, static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
                      .count()));
}

std::uint64_t PhaseProfiler::total_ns() const {
  std::uint64_t t = 0;
  for (auto v : ns_) t += v;
  return t;
}

std::uint64_t PhaseProfiler::total_ops() const {
  std::uint64_t t = 0;
  for (auto v : ops_) t += v;
  return t;
}

double PhaseProfiler::time_fraction(Phase p) const {
  const auto total = total_ns();
  return total ? static_cast<double>(time_ns(p)) / static_cast<double>(total) : 0.0;
}

double PhaseProfiler::ops_fraction(Phase p) const {
  const auto total = total_ops();
  return total ? static_cast<double>(ops(p)) / static_cast<double>(total) : 0.0;
}

double PhaseProfiler::mvm_time_fraction() const {
  return time_fraction(Phase::kSimilarity) + time_fraction(Phase::kProjection);
}

double PhaseProfiler::mvm_ops_fraction() const {
  return ops_fraction(Phase::kSimilarity) + ops_fraction(Phase::kProjection);
}

void PhaseProfiler::reset() {
  ns_.fill(0);
  ops_.fill(0);
}

void PhaseProfiler::merge(const PhaseProfiler& other) {
  for (int i = 0; i < kNumPhases; ++i) {
    ns_[i] += other.ns_[i];
    ops_[i] += other.ops_[i];
  }
}

}  // namespace h3dfact::resonator
