#pragma once
// Multi-trial experiment harness: runs many independent factorization trials
// (optionally in parallel) and aggregates the statistics reported in
// Table II, Fig. 6a/6b and the ablation benches.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "resonator/resonator.hpp"
#include "util/stats.hpp"

namespace h3dfact::resonator {

/// Experiment configuration.
struct TrialConfig {
  std::size_t dim = 1024;        ///< hypervector dimension D
  std::size_t factors = 3;       ///< F
  std::size_t codebook_size = 16;///< M (the paper's Table II "D" column)
  std::size_t trials = 100;
  std::size_t max_iterations = 1000;
  double query_flip_prob = 0.0;  ///< query noise (perceptual frontend)
  std::uint64_t seed = 1;
  unsigned threads = 0;          ///< 0 = hardware concurrency
  /// Record per-iteration correctness traces (accuracy-vs-iteration curves,
  /// Fig. 6a/6b). Threaded through the factory: the network it builds must
  /// have ResonatorOptions::record_correct_trace set accordingly — the
  /// TrialConfig-taking make_baseline / make_h3dfact overloads do this.
  bool record_correct_trace = false;
  /// Builds the factorizer for a given codebook set; receives the config so
  /// it can honor max_iterations and record_correct_trace. Defaults to the
  /// deterministic baseline.
  std::function<ResonatorNetwork(std::shared_ptr<const hdc::CodebookSet>,
                                 const TrialConfig&)>
      factory;
};

/// Aggregated outcome over all trials.
struct TrialStats {
  std::size_t trials = 0;
  std::size_t solved = 0;        ///< composed decode matched query
  std::size_t correct = 0;       ///< decode matched ground truth
  std::size_t cycles = 0;        ///< limit cycles detected (deterministic)
  util::RunningStats iterations_solved;  ///< iterations among solved trials
  std::vector<double> iteration_samples; ///< per-solved-trial iteration counts
  std::vector<std::size_t> correct_by_iteration;  ///< trace histogram (opt-in)

  [[nodiscard]] double accuracy() const {
    return trials ? static_cast<double>(correct) / static_cast<double>(trials) : 0.0;
  }
  [[nodiscard]] double solve_rate() const {
    return trials ? static_cast<double>(solved) / static_cast<double>(trials) : 0.0;
  }
  /// 95% Wilson half-width on the accuracy estimate.
  [[nodiscard]] double accuracy_ci() const;
  /// Censor-aware quantile of iterations-to-convergence over ALL trials:
  /// unsolved trials are treated as censored at +inf, so this returns the
  /// smallest iteration count within which at least a fraction `q` of all
  /// trials converged, or -1 ("Fail" in the paper's Table II convention)
  /// when fewer than q of the trials converged at all. `q` must lie in
  /// (0, 1]; out-of-range values return -1.
  [[nodiscard]] double iterations_quantile(double q) const;
  /// Quantile of iterations among SOLVED trials only (no censoring): the
  /// conditional convergence-speed distribution. -1 if none solved or `q`
  /// is outside (0, 1].
  [[nodiscard]] double iterations_quantile_solved(double q) const;
  /// Median iterations among solved trials (-1 if none solved).
  [[nodiscard]] double median_iterations() const;
  /// Accuracy after exactly k iterations (requires trace recording).
  /// k = 0 is the pre-iteration accuracy: the fraction of trials whose
  /// initial-state decode was already correct and stayed correct.
  [[nodiscard]] double accuracy_at(std::size_t k) const;
};

/// Run the experiment described by `config`.
/// The deprecated `record_traces` parameter ORs into
/// `config.record_correct_trace` (prefer setting the config field). When
/// traces are requested the factory must build a network that records them
/// (std::invalid_argument otherwise — the runner no longer rebuilds
/// networks behind the factory's back).
TrialStats run_trials(const TrialConfig& config, bool record_traces = false);

/// Deterministic baseline factorizer honoring the config's iteration cap
/// and trace opt-in — the default TrialConfig::factory.
ResonatorNetwork make_baseline(std::shared_ptr<const hdc::CodebookSet> set,
                               const TrialConfig& config);

/// H3DFact stochastic factorizer honoring the config's iteration cap and
/// trace opt-in (see make_h3dfact in resonator.hpp for the channel model).
ResonatorNetwork make_h3dfact(std::shared_ptr<const hdc::CodebookSet> set,
                              const TrialConfig& config, int adc_bits = 4,
                              double sigma_frac = 0.5);

}  // namespace h3dfact::resonator
