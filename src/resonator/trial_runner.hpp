#pragma once
// Multi-trial experiment harness: runs many independent factorization trials
// (optionally in parallel) and aggregates the statistics reported in
// Table II, Fig. 6a/6b and the ablation benches.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "resonator/resonator.hpp"
#include "util/stats.hpp"

namespace h3dfact::resonator {

/// Experiment configuration.
struct TrialConfig {
  std::size_t dim = 1024;        ///< hypervector dimension D
  std::size_t factors = 3;       ///< F
  std::size_t codebook_size = 16;///< M (the paper's Table II "D" column)
  std::size_t trials = 100;
  std::size_t max_iterations = 1000;
  double query_flip_prob = 0.0;  ///< query noise (perceptual frontend)
  std::uint64_t seed = 1;
  unsigned threads = 0;          ///< 0 = hardware concurrency
  /// Builds the factorizer for a given codebook set. Defaults to baseline.
  std::function<ResonatorNetwork(std::shared_ptr<const hdc::CodebookSet>)> factory;
};

/// Aggregated outcome over all trials.
struct TrialStats {
  std::size_t trials = 0;
  std::size_t solved = 0;        ///< composed decode matched query
  std::size_t correct = 0;       ///< decode matched ground truth
  std::size_t cycles = 0;        ///< limit cycles detected (deterministic)
  util::RunningStats iterations_solved;  ///< iterations among solved trials
  std::vector<double> iteration_samples; ///< per-solved-trial iteration counts
  std::vector<std::size_t> correct_by_iteration;  ///< trace histogram (opt-in)

  [[nodiscard]] double accuracy() const {
    return trials ? static_cast<double>(correct) / static_cast<double>(trials) : 0.0;
  }
  [[nodiscard]] double solve_rate() const {
    return trials ? static_cast<double>(solved) / static_cast<double>(trials) : 0.0;
  }
  /// 95% Wilson half-width on the accuracy estimate.
  [[nodiscard]] double accuracy_ci() const;
  /// Iterations within which a fraction `q` of all trials converged;
  /// returns -1 if fewer than q of the trials converged at all.
  [[nodiscard]] double iterations_quantile(double q) const;
  /// Median iterations among solved trials (-1 if none solved).
  [[nodiscard]] double median_iterations() const;
  /// Accuracy after exactly k iterations (requires trace recording).
  [[nodiscard]] double accuracy_at(std::size_t k) const;
};

/// Run the experiment described by `config`.
/// If `record_traces` is set, per-iteration correctness histograms are kept
/// (needed for the accuracy-vs-iteration curves of Fig. 6a/6b).
TrialStats run_trials(const TrialConfig& config, bool record_traces = false);

}  // namespace h3dfact::resonator
