#pragma once
// Multi-trial experiment harness: runs many independent factorization trials
// (optionally in parallel) and aggregates the statistics reported in
// Table II, Fig. 6a/6b and the ablation benches.
//
// run_trials is the one-cell special case of the sweep subsystem
// (src/sweep): a sweep cell IS a TrialConfig, and the sweep runner executes
// every cell through this harness, so sequential run_trials and a sharded
// sweep produce bit-identical per-cell statistics by construction.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "resonator/resonator.hpp"
#include "util/stats.hpp"

namespace h3dfact::resonator {

struct TrialConfig;

/// How the trial block is driven through the MVM engine.
enum class TrialExecution {
  /// Default: trials run in lockstep blocks through a BatchedFactorizer
  /// sharing one engine, so every similarity/projection is a batched engine
  /// pass. Bit-identical to kPerTrial on engines without per-call
  /// randomness (ExactMvmEngine — all channel/tie-break draws come from the
  /// per-trial generator either way).
  kBatched,
  /// One ResonatorNetwork::run per trial. Use for engines whose per-call
  /// RNG draw order matters (e.g. cim::CimMvmEngine device noise replayed
  /// draw-for-draw); statistically equivalent to kBatched.
  kPerTrial,
};

/// Experiment configuration.
struct TrialConfig {
  std::size_t dim = 1024;        ///< hypervector dimension D
  std::size_t factors = 3;       ///< factor count F
  std::size_t codebook_size = 16;///< M (the paper's Table II "D" column)
  std::size_t trials = 100;      ///< independent factorization trials
  std::size_t max_iterations = 1000;  ///< per-trial iteration cap
  double query_flip_prob = 0.0;  ///< query noise (perceptual frontend)
  std::uint64_t seed = 1;        ///< master seed (per-trial streams derive)
  unsigned threads = 0;          ///< worker threads; 0 = hardware concurrency
  /// How trial blocks drive the MVM engine (see TrialExecution).
  TrialExecution execution = TrialExecution::kBatched;
  /// Record per-iteration correctness traces (accuracy-vs-iteration curves,
  /// Fig. 6a/6b). Threaded through the factory: the network it builds must
  /// have ResonatorOptions::record_correct_trace set accordingly — the
  /// TrialConfig-taking make_baseline / make_h3dfact overloads do this.
  bool record_correct_trace = false;
  /// Builds the factorizer for a given codebook set; receives the config so
  /// it can honor max_iterations and record_correct_trace. Defaults to the
  /// deterministic baseline.
  std::function<ResonatorNetwork(std::shared_ptr<const hdc::CodebookSet>,
                                 const TrialConfig&)>
      factory;
};

/// Aggregated outcome over all trials.
struct TrialStats {
  std::size_t trials = 0;
  std::size_t solved = 0;        ///< composed decode matched query
  std::size_t correct = 0;       ///< decode matched ground truth
  std::size_t cycles = 0;        ///< limit cycles detected (deterministic)
  util::RunningStats iterations_solved;  ///< iterations among solved trials
  std::vector<double> iteration_samples; ///< per-solved-trial iteration counts
  std::vector<std::size_t> correct_by_iteration;  ///< trace histogram (opt-in)
  /// Raw (non-cumulative) trace histogram: trials whose decode was correct
  /// AT iteration k, whether or not it stayed correct (opt-in alongside
  /// correct_by_iteration). Entry 0 is the pre-iteration decode; entry 1 is
  /// the paper's "one-shot" readout (Fig. 6b).
  std::vector<std::size_t> correct_raw_by_iteration;

  /// Fraction of trials whose final decode matched the ground truth.
  [[nodiscard]] double accuracy() const {
    return trials ? static_cast<double>(correct) / static_cast<double>(trials) : 0.0;
  }
  /// Fraction of trials whose composed decode reproduced the query.
  [[nodiscard]] double solve_rate() const {
    return trials ? static_cast<double>(solved) / static_cast<double>(trials) : 0.0;
  }
  /// 95% Wilson half-width on the accuracy estimate.
  [[nodiscard]] double accuracy_ci() const;
  /// Censor-aware quantile of iterations-to-convergence over ALL trials:
  /// unsolved trials are treated as censored at +inf, so this returns the
  /// smallest iteration count within which at least a fraction `q` of all
  /// trials converged, or -1 ("Fail" in the paper's Table II convention)
  /// when fewer than q of the trials converged at all. `q` must lie in
  /// (0, 1]; out-of-range values return -1.
  [[nodiscard]] double iterations_quantile(double q) const;
  /// Quantile of iterations among SOLVED trials only (no censoring): the
  /// conditional convergence-speed distribution. -1 if none solved or `q`
  /// is outside (0, 1].
  [[nodiscard]] double iterations_quantile_solved(double q) const;
  /// Median iterations among solved trials (-1 if none solved).
  [[nodiscard]] double median_iterations() const;
  /// Accuracy after exactly k iterations, counting only trials whose decode
  /// stayed correct from k on (requires trace recording). k = 0 is the
  /// pre-iteration accuracy of the initial-state decode.
  [[nodiscard]] double accuracy_at(std::size_t k) const;
  /// Fraction of trials whose decode read correct AT iteration k, stable or
  /// not (requires trace recording). accuracy_raw_at(1) is the "one-shot"
  /// accuracy of Fig. 6b.
  [[nodiscard]] double accuracy_raw_at(std::size_t k) const;

  /// Fold one trial outcome into the aggregate. `correct` is the
  /// ground-truth check of `result.decoded`; `max_iterations` sizes the
  /// trace histograms (which must be pre-assigned when traces are on).
  void accumulate(const ResonatorResult& result, bool correct,
                  std::size_t max_iterations);

  /// Fold in the partial aggregate of a LATER contiguous trial block (the
  /// sweep shards split one cell's trials this way). Blocks must be merged
  /// in ascending trial order; iterations_solved is re-accumulated sample
  /// by sample, so the result is bit-identical to a single run over the
  /// union no matter how the range was partitioned.
  void merge_block(const TrialStats& later);
};

/// Trial-block alignment: run_trials executes trials in lockstep chunks of
/// this many problems, and sharded partial runs may only split on chunk
/// boundaries. Part of the determinism contract — per-chunk engine RNG
/// streams are keyed by (seed, chunk index) — so it is a fixed constant,
/// not a knob.
inline constexpr std::size_t kTrialBlockAlign = 4;

/// Run the experiment described by `config`. When traces are requested the
/// factory must build a network that records them (std::invalid_argument
/// otherwise — the runner never rebuilds networks behind the factory's
/// back). Deterministic for a given config: results are independent of the
/// thread count AND identical field-for-field (including sample order)
/// across thread counts and execution modes on engines without per-call
/// randomness.
TrialStats run_trials(const TrialConfig& config);

/// Run only trials [begin, end) of the config — the sweep shards' unit of
/// work. `begin` must be a multiple of kTrialBlockAlign and end <= trials.
/// Merging the blocks of a partition of [0, trials) with
/// TrialStats::merge_block (ascending) reproduces run_trials(config)
/// exactly: every per-trial stream derives from (seed, trial index) and
/// every per-chunk engine stream from (seed, chunk index) alone.
TrialStats run_trial_block(const TrialConfig& config, std::size_t begin,
                           std::size_t end);

/// Deterministic baseline factorizer honoring the config's iteration cap
/// and trace opt-in — the default TrialConfig::factory.
ResonatorNetwork make_baseline(std::shared_ptr<const hdc::CodebookSet> set,
                               const TrialConfig& config);

/// H3DFact stochastic factorizer honoring the config's iteration cap and
/// trace opt-in (see make_h3dfact in resonator.hpp for the channel model).
ResonatorNetwork make_h3dfact(std::shared_ptr<const hdc::CodebookSet> set,
                              const TrialConfig& config, int adc_bits = 4,
                              double sigma_frac = 0.5);

}  // namespace h3dfact::resonator
