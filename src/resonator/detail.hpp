#pragma once
// Internal helpers shared by the per-problem (ResonatorNetwork::run) and
// batched (BatchedFactorizer::run) resonator loops. The batched front-end's
// bit-identical-to-sequential guarantee depends on both loops using exactly
// these definitions — keep them here, not duplicated per translation unit.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "hdc/hypervector.hpp"

namespace h3dfact::resonator::detail {

inline std::size_t argmax(const std::vector<int>& xs) {
  return static_cast<std::size_t>(
      std::max_element(xs.begin(), xs.end()) - xs.begin());
}

inline std::uint64_t joint_hash(
    const std::vector<hdc::BipolarVector>& estimates) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const auto& e : estimates) {
    h ^= e.hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace h3dfact::resonator::detail
