#pragma once
// Similarity-path channels (Sec. III-C, Sec. IV-B).
//
// In hardware the similarity vector a = Xᵀu is read out of the RRAM crossbar
// as an analog current and digitized by a SAR ADC. That path is noisy
// (programming variation + read noise + PVT, Fig. 2b) and low-precision
// (4-bit, Fig. 6a). A SimilarityChannel models the transformation applied to
// the exact similarity values before the projection MVM consumes them.
// The resonator's sign() activation is scale-invariant, so channels may
// return values in any positively-scaled unit (e.g. raw ADC codes).

#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace h3dfact::resonator {

/// Transformation of an exact similarity vector into what the projection
/// tier actually receives.
class SimilarityChannel {
 public:
  virtual ~SimilarityChannel() = default;

  /// exact[m] ∈ [−D, D]; returns the (noisy/quantized) coefficients.
  [[nodiscard]] virtual std::vector<int> apply(const std::vector<int>& exact,
                                               util::Rng& rng) const = 0;

  /// True if the channel is deterministic (identity of randomness unused).
  [[nodiscard]] virtual bool deterministic() const { return false; }

  /// Human-readable description for reports.
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Pass-through (ideal digital readout) — the deterministic baseline [9].
class ExactChannel final : public SimilarityChannel {
 public:
  [[nodiscard]] std::vector<int> apply(const std::vector<int>& exact,
                                       util::Rng& rng) const override;
  [[nodiscard]] bool deterministic() const override { return true; }
  [[nodiscard]] std::string describe() const override { return "exact"; }
};

/// Additive i.i.d. Gaussian noise with stddev `sigma` (in similarity counts):
/// models aggregated RRAM read noise / PVT variation (Fig. 2b).
class GaussianChannel final : public SimilarityChannel {
 public:
  explicit GaussianChannel(double sigma);
  [[nodiscard]] std::vector<int> apply(const std::vector<int>& exact,
                                       util::Rng& rng) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] double sigma() const { return sigma_; }

 private:
  double sigma_;
};

/// Mid-tread uniform quantizer emulating a `bits`-bit SAR ADC. In signed
/// mode the full scale covers ±clip; in unsigned mode (the H3DFact
/// similarity path, whose activations are rectified) it covers [0, clip]
/// with 2^bits − 1 positive codes. Values inside one step of zero quantize
/// to 0 — coarse ADCs therefore *sparsify* the similarity vector, which is
/// the quantization stochasticity exploited in Fig. 6a.
class AdcChannel final : public SimilarityChannel {
 public:
  AdcChannel(int bits, double clip, bool signed_range = true);
  [[nodiscard]] std::vector<int> apply(const std::vector<int>& exact,
                                       util::Rng& rng) const override;
  [[nodiscard]] bool deterministic() const override { return true; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] int bits() const { return bits_; }
  [[nodiscard]] double clip() const { return clip_; }
  [[nodiscard]] int max_code() const { return max_code_; }
  [[nodiscard]] bool signed_range() const { return signed_; }

  /// Quantize one value to a code in [−max_code, max_code] (signed mode)
  /// or [0, max_code] (unsigned mode).
  [[nodiscard]] int quantize(double v) const;

 private:
  int bits_;
  double clip_;
  bool signed_;
  int max_code_;
  double step_;
};

/// Zero out entries with |a| below `threshold` counts (sense-amp VTGT
/// thresholding; sparsifies like [15]'s in-memory factorizer).
class ThresholdChannel final : public SimilarityChannel {
 public:
  explicit ThresholdChannel(double threshold);
  [[nodiscard]] std::vector<int> apply(const std::vector<int>& exact,
                                       util::Rng& rng) const override;
  [[nodiscard]] bool deterministic() const override { return true; }
  [[nodiscard]] std::string describe() const override;

 private:
  double threshold_;
};

/// Keep only the k largest entries (winner-take-all sensing, an alternative
/// sparsifying nonlinearity to the VTGT threshold; implementable with a
/// current-mode WTA circuit instead of a fixed reference). Ties at the k-th
/// value keep the lower index.
class TopKChannel final : public SimilarityChannel {
 public:
  explicit TopKChannel(std::size_t k);
  [[nodiscard]] std::vector<int> apply(const std::vector<int>& exact,
                                       util::Rng& rng) const override;
  [[nodiscard]] bool deterministic() const override { return true; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::size_t k() const { return k_; }

 private:
  std::size_t k_;
};

/// Applies a sequence of channels in order (e.g. Gaussian → ADC).
class CompositeChannel final : public SimilarityChannel {
 public:
  explicit CompositeChannel(std::vector<std::shared_ptr<const SimilarityChannel>> stages);
  [[nodiscard]] std::vector<int> apply(const std::vector<int>& exact,
                                       util::Rng& rng) const override;
  [[nodiscard]] bool deterministic() const override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::vector<std::shared_ptr<const SimilarityChannel>> stages_;
};

/// The H3DFact analog similarity path for dimension D: Gaussian read noise
/// of stddev `sigma_frac·√D`, a sense threshold at `threshold_sigmas·√D`
/// (entries below it read as zero — the VTGT decision of Fig. 2), and a
/// `bits`-bit unsigned ADC clipped at `clip_sigmas·√D` counts. The defaults
/// reproduce the paper's configuration: 4-bit ADC, device noise at half the
/// inter-vector crosstalk floor (√D), threshold at 1.5 crosstalk sigmas.
std::shared_ptr<const SimilarityChannel> make_h3dfact_channel(
    std::size_t dim, int adc_bits = 4, double sigma_frac = 0.5,
    double clip_sigmas = 4.0, double threshold_sigmas = 1.5);

}  // namespace h3dfact::resonator
