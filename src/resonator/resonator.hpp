#pragma once
// The resonator network factorizer (Sec. II-B state-space equations), in both
// its deterministic baseline form (Frady et al. [9]) and the stochastic
// H3DFact form (noisy similarity channel + low-precision ADC, Sec. III-C).
//
// Each iteration, for every factor f:
//   u_f      = s ⊙ ⊙_{f'≠f} x̂_{f'}          (unbinding, XNOR tier-1)
//   a_f      = X_fᵀ u_f                       (similarity MVM, RRAM tier-3)
//   ã_f      = channel(a_f)                   (noise + ADC, Sec. III-C)
//   x̂_f(t+1) = sign(X_f ã_f)                  (projection MVM tier-2 + sign)
//
// The loop stops when the composed decoded product matches the query, when a
// limit cycle / fixed point is detected (deterministic dynamics only), or at
// the iteration cap.

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "hdc/codebook.hpp"
#include "resonator/channels.hpp"
#include "resonator/limit_cycle.hpp"
#include "resonator/problem.hpp"
#include "resonator/profiler.hpp"
#include "resonator/snapshot.hpp"
#include "util/rng.hpp"

namespace h3dfact::resonator {

/// Abstraction of the two MVM kernels so the same loop can run on exact
/// software kernels or through a modelled hardware path (cim/arch layers).
class MvmEngine {
 public:
  virtual ~MvmEngine() = default;

  /// a = X_fᵀ u (raw similarity read-out; may already include device noise).
  [[nodiscard]] virtual std::vector<int> similarity(std::size_t factor,
                                                    const hdc::BipolarVector& u,
                                                    util::Rng& rng) = 0;

  /// y = X_f ã (projection accumulation; may include device noise).
  [[nodiscard]] virtual std::vector<int> project(std::size_t factor,
                                                 const std::vector<int>& coeffs,
                                                 util::Rng& rng) = 0;

  /// Batched similarity: a_b = X_fᵀ u_b for every query of the batch in one
  /// engine pass (M×B block). The default walks the per-call kernel in batch
  /// order, so custom engines stay correct; ExactMvmEngine swaps in the
  /// blocked XOR+popcount tile kernel and CimMvmEngine a single macro pass.
  [[nodiscard]] virtual hdc::CoeffBlock similarity_batch(
      std::size_t factor, std::span<const hdc::BipolarVector> us,
      util::Rng& rng);

  /// Batched projection over an M×B SoA coefficient block (D×B block out).
  /// Same contract as similarity_batch: item b must be distributed like a
  /// per-call project(factor, coeffs.item(b)).
  [[nodiscard]] virtual hdc::CoeffBlock project_batch(
      std::size_t factor, const hdc::CoeffBlock& coeffs, util::Rng& rng);
};

/// Exact software kernels over a codebook set. All per-call and batched
/// work routes through the runtime-selected multi-ISA kernel backend
/// (hdc/kernels/backend.hpp) unless a specific backend is pinned.
class ExactMvmEngine final : public MvmEngine {
 public:
  explicit ExactMvmEngine(std::shared_ptr<const hdc::CodebookSet> set);

  /// Pin every MVM of this engine to one kernel backend (parity suites,
  /// A/B timing). The single-argument constructor instead follows the
  /// process-wide kernels::active() selection live, call by call.
  ExactMvmEngine(std::shared_ptr<const hdc::CodebookSet> set,
                 const hdc::kernels::KernelBackend& backend);
  [[nodiscard]] std::vector<int> similarity(std::size_t factor,
                                            const hdc::BipolarVector& u,
                                            util::Rng& rng) override;
  [[nodiscard]] std::vector<int> project(std::size_t factor,
                                         const std::vector<int>& coeffs,
                                         util::Rng& rng) override;
  [[nodiscard]] hdc::CoeffBlock similarity_batch(
      std::size_t factor, std::span<const hdc::BipolarVector> us,
      util::Rng& rng) override;
  [[nodiscard]] hdc::CoeffBlock project_batch(std::size_t factor,
                                              const hdc::CoeffBlock& coeffs,
                                              util::Rng& rng) override;

 private:
  std::shared_ptr<const hdc::CodebookSet> set_;
  const hdc::kernels::KernelBackend* backend_ = nullptr;  // nullptr = live
};

/// Factor-update schedule.
enum class UpdateMode {
  kAsynchronous,  ///< each factor sees the freshest other estimates (default)
  kSynchronous,   ///< all factors updated from the previous iteration's state
};

/// Configuration of a resonator run.
struct ResonatorOptions {
  UpdateMode update = UpdateMode::kAsynchronous;
  std::size_t max_iterations = 1000;
  /// Similarity-path transformation; nullptr = exact (deterministic baseline).
  std::shared_ptr<const SimilarityChannel> channel;
  /// Start from random states instead of codebook superpositions.
  bool random_init = false;
  /// Resolve sign() ties randomly (metastability of a real comparator) even
  /// when the similarity channel is deterministic. Ties at exactly zero are
  /// rare after the first iterations, so limit-cycle detection by state
  /// revisit remains meaningful.
  bool random_tie_break = true;
  /// Rectify the similarity vector (negative dot products → 0) before the
  /// channel/projection. This nonlinear cleanup is essential for capacity —
  /// without it the dynamics cycle even at small problem sizes — and matches
  /// the nonnegative similarity activations of the in-memory factorizer
  /// [15] whose readout the H3DFact similarity path inherits.
  bool clip_negative_similarity = true;
  /// Cosine(compose(decode), query) required to declare success.
  double success_threshold = 1.0;
  /// Detect state revisits (meaningful only for deterministic dynamics).
  bool detect_limit_cycles = true;
  /// Stop as soon as a limit cycle is found (otherwise keep iterating).
  bool stop_on_cycle = true;
  /// Record, per iteration, whether the decode matched the ground truth.
  bool record_correct_trace = false;
  /// Optional phase profiler (Fig. 1c).
  PhaseProfiler* profiler = nullptr;
};

/// Outcome of one factorization run.
struct ResonatorResult {
  bool solved = false;                  ///< composed decode matched the query
  std::vector<std::size_t> decoded;     ///< argmax index per factor at stop
  std::size_t iterations = 0;           ///< iterations executed
  bool hit_iteration_cap = false;
  std::optional<CycleInfo> cycle;       ///< limit cycle, if one was detected
  /// Decode==truth per iteration (opt-in). Index 0 is the *pre-iteration*
  /// decode of the initial estimates (ideal readout, no device noise);
  /// index t >= 1 is the decode after iteration t.
  std::vector<char> correct_trace;
};

/// The factorizer. Reusable across problems that share its codebook set.
class ResonatorNetwork {
 public:
  /// Software-exact engine over the given codebooks.
  ResonatorNetwork(std::shared_ptr<const hdc::CodebookSet> set,
                   ResonatorOptions options);

  /// Custom MVM engine (e.g. the modelled H3DFact chip).
  ResonatorNetwork(std::shared_ptr<const hdc::CodebookSet> set,
                   std::shared_ptr<MvmEngine> engine, ResonatorOptions options);

  [[nodiscard]] const ResonatorOptions& options() const { return options_; }
  [[nodiscard]] const hdc::CodebookSet& codebooks() const { return *set_; }
  /// The MVM engine this network drives (shared so a BatchedFactorizer can
  /// fan a whole trial block through the same engine in lockstep).
  [[nodiscard]] const std::shared_ptr<MvmEngine>& engine() const {
    return engine_;
  }

  /// Factorize one problem instance. `rng` drives all stochastic elements.
  [[nodiscard]] ResonatorResult run(const FactorizationProblem& problem,
                                    util::Rng& rng) const;

  /// run() with periodic state capture: every `snapshots.every` completed
  /// iterations the sink receives a ResonatorSnapshot from which resume()
  /// continues bit-identically. Disabled policy == plain run().
  [[nodiscard]] ResonatorResult run(const FactorizationProblem& problem,
                                    util::Rng& rng,
                                    const SnapshotPolicy& snapshots) const;

  /// Continue an interrupted solve from a snapshot. `rng` is overwritten
  /// with the snapshot's generator state, then drives the remaining
  /// iterations — the combined interrupted + resumed run yields the same
  /// ResonatorResult, bit for bit, as an uninterrupted run(). Throws
  /// std::runtime_error when the snapshot's codebook fingerprint or options
  /// digest does not match this network.
  [[nodiscard]] ResonatorResult resume(const ResonatorSnapshot& snapshot,
                                       util::Rng& rng,
                                       const SnapshotPolicy& snapshots = {}) const;

 private:
  [[nodiscard]] ResonatorResult iterate(const FactorizationProblem& problem,
                                        util::Rng& rng,
                                        std::vector<hdc::BipolarVector>& est,
                                        ResonatorResult result,
                                        LimitCycleDetector& cycles,
                                        std::size_t start_iteration,
                                        const SnapshotPolicy& snapshots) const;

  std::shared_ptr<const hdc::CodebookSet> set_;
  std::shared_ptr<MvmEngine> engine_;
  ResonatorOptions options_;
};

/// Deterministic baseline resonator network [9].
ResonatorNetwork make_baseline(std::shared_ptr<const hdc::CodebookSet> set,
                               std::size_t max_iterations);

/// H3DFact stochastic factorizer: Gaussian device noise + sense threshold +
/// 4-bit unsigned ADC on the similarity path (Sec. III-C).
ResonatorNetwork make_h3dfact(std::shared_ptr<const hdc::CodebookSet> set,
                              std::size_t max_iterations, int adc_bits = 4,
                              double sigma_frac = 0.5);

}  // namespace h3dfact::resonator
