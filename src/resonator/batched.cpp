#include "resonator/batched.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "resonator/detail.hpp"

namespace h3dfact::resonator {

using detail::argmax;
using detail::joint_hash;

BatchedFactorizer::BatchedFactorizer(
    std::shared_ptr<const hdc::CodebookSet> set, ResonatorOptions options)
    : set_(std::move(set)),
      engine_(std::make_shared<ExactMvmEngine>(set_)),
      options_(std::move(options)) {
  if (!set_ || set_->factors() == 0) {
    throw std::invalid_argument(
        "batched factorizer needs a non-empty codebook set");
  }
}

BatchedFactorizer::BatchedFactorizer(
    std::shared_ptr<const hdc::CodebookSet> set,
    std::shared_ptr<MvmEngine> engine, ResonatorOptions options)
    : set_(std::move(set)),
      engine_(std::move(engine)),
      options_(std::move(options)) {
  if (!set_ || set_->factors() == 0) {
    throw std::invalid_argument(
        "batched factorizer needs a non-empty codebook set");
  }
  if (!engine_) throw std::invalid_argument("null MVM engine");
}

std::vector<ResonatorResult> BatchedFactorizer::run(
    std::span<const FactorizationProblem> problems, std::span<util::Rng> rngs,
    util::Rng& device_rng) const {
  if (problems.empty()) return {};
  if (rngs.size() != problems.size()) {
    throw std::invalid_argument("one RNG per problem required");
  }
  for (const auto& problem : problems) {
    if (problem.codebooks.get() != set_.get() &&
        (problem.factors() != set_->factors() ||
         problem.dim() != set_->dim())) {
      throw std::invalid_argument(
          "problem incompatible with factorizer codebooks");
    }
  }

  const std::size_t N = problems.size();
  const std::size_t F = set_->factors();
  const std::size_t D = set_->dim();
  const bool deterministic_run =
      !options_.channel || options_.channel->deterministic();
  const bool random_ties = options_.random_tie_break || !deterministic_run;
  const auto success_dot = static_cast<long long>(
      options_.success_threshold * static_cast<double>(D));

  std::vector<ResonatorResult> results(N);
  std::vector<std::vector<hdc::BipolarVector>> est(N);
  std::vector<hdc::BipolarVector> P(N);
  std::vector<LimitCycleDetector> cycles(N);

  // Per-problem init in batch order, mirroring ResonatorNetwork::run so the
  // per-problem RNG streams line up draw for draw.
  for (std::size_t b = 0; b < N; ++b) {
    results[b].decoded.assign(F, 0);
    est[b].resize(F);
    for (std::size_t f = 0; f < F; ++f) {
      if (options_.random_init) {
        est[b][f] = hdc::BipolarVector::random(D, rngs[b]);
      } else {
        est[b][f] = options_.random_tie_break
                        ? set_->book(f).superposition(rngs[b])
                        : set_->book(f).superposition();
      }
    }
    P[b] = problems[b].query;
    for (const auto& v : est[b]) P[b].bind_inplace(v);
    if (options_.record_correct_trace) {
      std::vector<std::size_t> decoded0(F);
      for (std::size_t f = 0; f < F; ++f) {
        decoded0[f] = set_->book(f).nearest(P[b].bind(est[b][f]));
      }
      results[b].correct_trace.push_back(
          problems[b].is_correct(decoded0) ? 1 : 0);
    }
    if (options_.detect_limit_cycles && deterministic_run) {
      cycles[b].observe(joint_hash(est[b]), 0);
    }
  }

  std::vector<std::size_t> active(N);
  for (std::size_t b = 0; b < N; ++b) active[b] = b;

  const bool synchronous = options_.update == UpdateMode::kSynchronous;
  std::vector<hdc::BipolarVector> us;
  std::vector<std::size_t> next_active;
  for (std::size_t t = 1; t <= options_.max_iterations && !active.empty();
       ++t) {
    // Synchronous snapshot: every factor of every problem reads this. The
    // asynchronous schedule instead reads the live per-problem state, which
    // still batches — the lockstep is across problems, not within one.
    std::vector<std::vector<hdc::BipolarVector>> prev;
    std::vector<hdc::BipolarVector> P_read;
    if (synchronous) {
      prev.reserve(active.size());
      P_read.reserve(active.size());
      for (const std::size_t b : active) {
        prev.push_back(est[b]);
        P_read.push_back(P[b]);
      }
    }

    for (std::size_t f = 0; f < F; ++f) {
      us.clear();
      us.reserve(active.size());
      for (std::size_t idx = 0; idx < active.size(); ++idx) {
        us.push_back(synchronous
                         ? P_read[idx].bind(prev[idx][f])
                         : P[active[idx]].bind(est[active[idx]][f]));
      }

      // One batched similarity pass for this factor across the whole batch.
      hdc::CoeffBlock a_block = engine_->similarity_batch(f, us, device_rng);

      hdc::CoeffBlock coeffs(set_->book(f).size(), active.size());
      for (std::size_t idx = 0; idx < active.size(); ++idx) {
        const std::size_t b = active[idx];
        std::vector<int> a = a_block.item(idx);
        results[b].decoded[f] = argmax(a);
        if (options_.clip_negative_similarity) {
          for (auto& v : a) v = std::max(v, 0);
        }
        if (options_.channel) a = options_.channel->apply(a, rngs[b]);
        coeffs.set_item(idx, a);
      }

      // One batched projection pass, then per-problem activation.
      hdc::CoeffBlock y_block = engine_->project_batch(f, coeffs, device_rng);
      for (std::size_t idx = 0; idx < active.size(); ++idx) {
        const std::size_t b = active[idx];
        const std::vector<int> y = y_block.item(idx);
        hdc::BipolarVector next =
            random_ties ? hdc::sign_of(y, rngs[b]) : hdc::sign_of(y);
        P[b].bind_inplace(est[b][f]);
        P[b].bind_inplace(next);
        est[b][f] = std::move(next);
      }
    }

    // Decode + convergence; solved/cycled problems retire from the batch.
    next_active.clear();
    for (const std::size_t b : active) {
      results[b].iterations = t;
      hdc::BipolarVector composed = set_->compose(results[b].decoded);
      const long long d = composed.dot(problems[b].query);
      if (options_.record_correct_trace) {
        results[b].correct_trace.push_back(
            problems[b].is_correct(results[b].decoded) ? 1 : 0);
      }
      if (d >= success_dot) {
        results[b].solved = true;
        continue;
      }
      if (options_.detect_limit_cycles && deterministic_run) {
        if (auto info = cycles[b].observe(joint_hash(est[b]), t)) {
          results[b].cycle = info;
          if (options_.stop_on_cycle) continue;
        }
      }
      next_active.push_back(b);
    }
    active.swap(next_active);
  }

  for (const std::size_t b : active) results[b].hit_iteration_cap = true;
  return results;
}

std::vector<ResonatorResult> BatchedFactorizer::run(
    std::span<const FactorizationProblem> problems, std::uint64_t seed) const {
  std::vector<util::Rng> rngs;
  rngs.reserve(problems.size());
  for (std::size_t b = 0; b < problems.size(); ++b) {
    rngs.emplace_back(seed ^
                      (0xabcdef12345ULL + b * 0x9e3779b97f4a7c15ULL));
  }
  std::uint64_t device_stream = seed ^ 0xd1ceb004c0ffee11ULL;
  util::Rng device_rng(util::splitmix64(device_stream));
  return run(problems, std::span<util::Rng>(rngs), device_rng);
}

}  // namespace h3dfact::resonator
