#include "resonator/trial_runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace h3dfact::resonator {

namespace {

// 1-based rank of the q-quantile order statistic over n outcomes: ceil(q*n),
// computed with an epsilon so binary-representation error in q (e.g.
// 0.9 * 30 == 27.000000000000004 in doubles) cannot round a rank up a slot
// and mislabel the quantile.
std::size_t quantile_rank(double q, std::size_t n) {
  const double scaled = q * static_cast<double>(n) - 1e-9;
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(scaled)));
}

}  // namespace

double TrialStats::accuracy_ci() const {
  return util::wilson_halfwidth(correct, trials);
}

double TrialStats::iterations_quantile(double q) const {
  if (trials == 0 || q <= 0.0 || q > 1.0) return -1.0;
  // Censor-aware over ALL trials: unsolved trials sit at +inf, so the q-th
  // order statistic exists iff at least ceil(q*trials) trials solved.
  const std::size_t needed = quantile_rank(q, trials);
  if (iteration_samples.size() < needed) return -1.0;
  std::vector<double> xs = iteration_samples;
  std::sort(xs.begin(), xs.end());
  return xs[needed - 1];
}

double TrialStats::iterations_quantile_solved(double q) const {
  if (iteration_samples.empty() || q <= 0.0 || q > 1.0) return -1.0;
  const std::size_t needed =
      std::min(quantile_rank(q, iteration_samples.size()),
               iteration_samples.size());
  std::vector<double> xs = iteration_samples;
  std::sort(xs.begin(), xs.end());
  return xs[needed - 1];
}

double TrialStats::median_iterations() const {
  if (iteration_samples.empty()) return -1.0;
  return util::median(iteration_samples);
}

double TrialStats::accuracy_at(std::size_t k) const {
  if (trials == 0 || correct_by_iteration.empty()) return 0.0;
  const std::size_t idx = std::min(k, correct_by_iteration.size() - 1);
  return static_cast<double>(correct_by_iteration[idx]) /
         static_cast<double>(trials);
}

ResonatorNetwork make_baseline(std::shared_ptr<const hdc::CodebookSet> set,
                               const TrialConfig& config) {
  ResonatorOptions opts;
  opts.max_iterations = config.max_iterations;
  opts.channel = nullptr;
  opts.record_correct_trace = config.record_correct_trace;
  return ResonatorNetwork(std::move(set), opts);
}

ResonatorNetwork make_h3dfact(std::shared_ptr<const hdc::CodebookSet> set,
                              const TrialConfig& config, int adc_bits,
                              double sigma_frac) {
  ResonatorOptions opts;
  opts.max_iterations = config.max_iterations;
  opts.channel = make_h3dfact_channel(set->dim(), adc_bits, sigma_frac);
  opts.detect_limit_cycles = false;
  opts.record_correct_trace = config.record_correct_trace;
  return ResonatorNetwork(std::move(set), opts);
}

TrialStats run_trials(const TrialConfig& config, bool record_traces) {
  if (config.trials == 0) throw std::invalid_argument("zero trials");

  TrialConfig cfg = config;
  cfg.record_correct_trace = config.record_correct_trace || record_traces;
  const bool traces = cfg.record_correct_trace;

  util::Rng master(cfg.seed);
  auto generator = std::make_shared<ProblemGenerator>(
      cfg.dim, cfg.factors, cfg.codebook_size, master);
  auto set = generator->codebooks_ptr();

  auto factory = cfg.factory;
  if (!factory) {
    factory = [](std::shared_ptr<const hdc::CodebookSet> s,
                 const TrialConfig& c) {
      return make_baseline(std::move(s), c);
    };
  }

  unsigned nthreads = cfg.threads;
  if (nthreads == 0) {
    nthreads = std::max(1u, std::thread::hardware_concurrency());
  }
  nthreads = static_cast<unsigned>(
      std::min<std::size_t>(nthreads, cfg.trials));

  TrialStats total;
  total.trials = cfg.trials;
  if (traces) {
    total.correct_by_iteration.assign(cfg.max_iterations + 1, 0);
  }

  std::mutex merge_mutex;
  std::atomic<std::size_t> next_trial{0};
  std::exception_ptr worker_error;

  auto worker = [&]() {
    // The factory receives the config, so the network it builds already
    // honors the trace opt-in — no rebuild behind the factory's back.
    ResonatorNetwork net = factory(set, cfg);
    if (traces && !net.options().record_correct_trace) {
      throw std::invalid_argument(
          "record_correct_trace requested but the factory built a network "
          "without ResonatorOptions::record_correct_trace");
    }

    TrialStats local;
    std::vector<std::size_t> local_correct_hist;
    if (traces) local_correct_hist.assign(cfg.max_iterations + 1, 0);

    for (;;) {
      const std::size_t t = next_trial.fetch_add(1);
      if (t >= cfg.trials) break;
      util::Rng trial_rng(cfg.seed ^ (0xabcdef12345ULL + t * 0x9e3779b97f4a7c15ULL));
      FactorizationProblem problem =
          cfg.query_flip_prob > 0.0
              ? generator->sample_noisy(cfg.query_flip_prob, trial_rng)
              : generator->sample(trial_rng);

      ResonatorResult r = net.run(problem, trial_rng);
      const bool correct = problem.is_correct(r.decoded);
      if (r.solved) {
        ++local.solved;
        local.iterations_solved.add(static_cast<double>(r.iterations));
        local.iteration_samples.push_back(static_cast<double>(r.iterations));
      }
      if (correct) ++local.correct;
      if (r.cycle) ++local.cycles;
      if (traces) {
        // correct_trace[i] == decode correctness after iteration i, with
        // i == 0 the pre-iteration decode of the initial state; count from
        // the first index whose whole suffix stays correct.
        const auto& trace = r.correct_trace;
        std::size_t first_stable = trace.size();  // sentinel: never stable
        for (std::size_t i = trace.size(); i-- > 0;) {
          if (trace[i]) {
            first_stable = i;
          } else {
            break;
          }
        }
        // A solved-and-correct run stays correct after it stops early.
        if (first_stable < trace.size() || (r.solved && correct)) {
          const std::size_t from = std::min(first_stable, cfg.max_iterations);
          for (std::size_t k = from; k <= cfg.max_iterations; ++k) {
            ++local_correct_hist[k];
          }
        }
      }
    }

    std::lock_guard<std::mutex> lock(merge_mutex);
    total.solved += local.solved;
    total.correct += local.correct;
    total.cycles += local.cycles;
    total.iterations_solved.merge(local.iterations_solved);
    total.iteration_samples.insert(total.iteration_samples.end(),
                                   local.iteration_samples.begin(),
                                   local.iteration_samples.end());
    if (traces) {
      for (std::size_t k = 0; k < local_correct_hist.size(); ++k) {
        total.correct_by_iteration[k] += local_correct_hist[k];
      }
    }
  };

  auto guarded_worker = [&]() {
    try {
      worker();
    } catch (...) {
      std::lock_guard<std::mutex> lock(merge_mutex);
      if (!worker_error) worker_error = std::current_exception();
    }
  };

  if (nthreads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (unsigned i = 0; i < nthreads; ++i) pool.emplace_back(guarded_worker);
    for (auto& th : pool) th.join();
    if (worker_error) std::rethrow_exception(worker_error);
  }
  return total;
}

}  // namespace h3dfact::resonator
