#include "resonator/trial_runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "resonator/batched.hpp"
#include "util/sync.hpp"

namespace h3dfact::resonator {

namespace {

// 1-based rank of the q-quantile order statistic over n outcomes: ceil(q*n),
// computed with an epsilon so binary-representation error in q (e.g.
// 0.9 * 30 == 27.000000000000004 in doubles) cannot round a rank up a slot
// and mislabel the quantile.
std::size_t quantile_rank(double q, std::size_t n) {
  const double scaled = q * static_cast<double>(n) - 1e-9;
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(scaled)));
}

}  // namespace

double TrialStats::accuracy_ci() const {
  return util::wilson_halfwidth(correct, trials);
}

double TrialStats::iterations_quantile(double q) const {
  if (trials == 0 || q <= 0.0 || q > 1.0) return -1.0;
  // Censor-aware over ALL trials: unsolved trials sit at +inf, so the q-th
  // order statistic exists iff at least ceil(q*trials) trials solved.
  const std::size_t needed = quantile_rank(q, trials);
  if (iteration_samples.size() < needed) return -1.0;
  std::vector<double> xs = iteration_samples;
  std::sort(xs.begin(), xs.end());
  return xs[needed - 1];
}

double TrialStats::iterations_quantile_solved(double q) const {
  if (iteration_samples.empty() || q <= 0.0 || q > 1.0) return -1.0;
  const std::size_t needed =
      std::min(quantile_rank(q, iteration_samples.size()),
               iteration_samples.size());
  std::vector<double> xs = iteration_samples;
  std::sort(xs.begin(), xs.end());
  return xs[needed - 1];
}

double TrialStats::median_iterations() const {
  if (iteration_samples.empty()) return -1.0;
  return util::median(iteration_samples);
}

double TrialStats::accuracy_at(std::size_t k) const {
  if (trials == 0 || correct_by_iteration.empty()) return 0.0;
  const std::size_t idx = std::min(k, correct_by_iteration.size() - 1);
  return static_cast<double>(correct_by_iteration[idx]) /
         static_cast<double>(trials);
}

double TrialStats::accuracy_raw_at(std::size_t k) const {
  if (trials == 0 || correct_raw_by_iteration.empty()) return 0.0;
  const std::size_t idx = std::min(k, correct_raw_by_iteration.size() - 1);
  return static_cast<double>(correct_raw_by_iteration[idx]) /
         static_cast<double>(trials);
}

void TrialStats::accumulate(const ResonatorResult& result, bool correct_decode,
                            std::size_t max_iterations) {
  ++trials;
  if (result.solved) {
    ++solved;
    iterations_solved.add(static_cast<double>(result.iterations));
    iteration_samples.push_back(static_cast<double>(result.iterations));
  }
  if (correct_decode) ++correct;
  if (result.cycle) ++cycles;

  const auto& trace = result.correct_trace;
  if (trace.empty()) return;
  if (correct_by_iteration.empty()) {
    correct_by_iteration.assign(max_iterations + 1, 0);
    correct_raw_by_iteration.assign(max_iterations + 1, 0);
  }

  // Raw histogram: the decode AT iteration k. A run that stopped early
  // keeps its final decode, so the last trace entry extends to the cap.
  for (std::size_t k = 0; k <= max_iterations; ++k) {
    const bool at_k = k < trace.size() ? trace[k] != 0 : trace.back() != 0;
    if (at_k) ++correct_raw_by_iteration[k];
  }

  // Cumulative histogram: correct_trace[i] == decode correctness after
  // iteration i, with i == 0 the pre-iteration decode of the initial state;
  // count from the first index whose whole suffix stays correct.
  std::size_t first_stable = trace.size();  // sentinel: never stable
  for (std::size_t i = trace.size(); i-- > 0;) {
    if (trace[i]) {
      first_stable = i;
    } else {
      break;
    }
  }
  // A solved-and-correct run stays correct after it stops early.
  if (first_stable < trace.size() || (result.solved && correct_decode)) {
    const std::size_t from = std::min(first_stable, max_iterations);
    for (std::size_t k = from; k <= max_iterations; ++k) {
      ++correct_by_iteration[k];
    }
  }
}

void TrialStats::merge_block(const TrialStats& later) {
  trials += later.trials;
  solved += later.solved;
  correct += later.correct;
  cycles += later.cycles;
  // Re-accumulate instead of Welford-merging: sequential add() over the
  // concatenated sample sequence makes the result independent of how the
  // trial range was partitioned, down to the last floating-point bit.
  for (double x : later.iteration_samples) iterations_solved.add(x);
  iteration_samples.insert(iteration_samples.end(),
                           later.iteration_samples.begin(),
                           later.iteration_samples.end());
  if (!later.correct_by_iteration.empty()) {
    if (correct_by_iteration.empty()) {
      correct_by_iteration.assign(later.correct_by_iteration.size(), 0);
      correct_raw_by_iteration.assign(later.correct_raw_by_iteration.size(),
                                      0);
    }
    if (correct_by_iteration.size() != later.correct_by_iteration.size()) {
      throw std::invalid_argument(
          "merge_block: trace histogram sizes disagree (different caps?)");
    }
    for (std::size_t k = 0; k < correct_by_iteration.size(); ++k) {
      correct_by_iteration[k] += later.correct_by_iteration[k];
      correct_raw_by_iteration[k] += later.correct_raw_by_iteration[k];
    }
  }
}

ResonatorNetwork make_baseline(std::shared_ptr<const hdc::CodebookSet> set,
                               const TrialConfig& config) {
  ResonatorOptions opts;
  opts.max_iterations = config.max_iterations;
  opts.channel = nullptr;
  opts.record_correct_trace = config.record_correct_trace;
  return ResonatorNetwork(std::move(set), opts);
}

ResonatorNetwork make_h3dfact(std::shared_ptr<const hdc::CodebookSet> set,
                              const TrialConfig& config, int adc_bits,
                              double sigma_frac) {
  ResonatorOptions opts;
  opts.max_iterations = config.max_iterations;
  opts.channel = make_h3dfact_channel(set->dim(), adc_bits, sigma_frac);
  opts.detect_limit_cycles = false;
  opts.record_correct_trace = config.record_correct_trace;
  return ResonatorNetwork(std::move(set), opts);
}

TrialStats run_trials(const TrialConfig& config) {
  if (config.trials == 0) throw std::invalid_argument("zero trials");
  return run_trial_block(config, 0, config.trials);
}

TrialStats run_trial_block(const TrialConfig& config, std::size_t begin,
                           std::size_t end) {
  if (begin >= end || end > config.trials) {
    throw std::invalid_argument("bad trial block range");
  }
  if (begin % kTrialBlockAlign != 0) {
    throw std::invalid_argument("trial block must start on a chunk boundary");
  }
  const TrialConfig& cfg = config;
  const bool traces = cfg.record_correct_trace;

  util::Rng master(cfg.seed);
  auto generator = std::make_shared<ProblemGenerator>(
      cfg.dim, cfg.factors, cfg.codebook_size, master);
  auto set = generator->codebooks_ptr();

  auto factory = cfg.factory;
  if (!factory) {
    factory = [](std::shared_ptr<const hdc::CodebookSet> s,
                 const TrialConfig& c) {
      return make_baseline(std::move(s), c);
    };
  }

  // Chunk indices are absolute (trial t lives in chunk t / align), so a
  // partial block reproduces exactly the chunks a full run would execute
  // over the same trials.
  const std::size_t chunk0 = begin / kTrialBlockAlign;
  const std::size_t chunk_end = (end + kTrialBlockAlign - 1) / kTrialBlockAlign;
  const std::size_t nchunks = chunk_end - chunk0;
  unsigned nthreads = cfg.threads;
  if (nthreads == 0) {
    nthreads = std::max(1u, std::thread::hardware_concurrency());
  }
  nthreads = static_cast<unsigned>(std::min<std::size_t>(nthreads, nchunks));

  // Per-chunk partial statistics, merged in chunk order after the join, so
  // the aggregate is a pure function of (config, block range).
  std::vector<TrialStats> chunk_stats(nchunks);
  std::atomic<std::size_t> next_chunk{0};
  // First worker exception wins; GUARDED_BY makes the Clang CI legs prove
  // every access happens under the mutex.
  struct ErrorSlot {
    util::Mutex mutex;
    std::exception_ptr error GUARDED_BY(mutex);
  } worker_error;

  // Per-trial streams derive from (seed, trial index) alone; the chunk's
  // engine-randomness stream derives from (seed, chunk index) alone.
  auto trial_rng = [&](std::size_t t) {
    return util::Rng(cfg.seed ^
                     (0xabcdef12345ULL + t * 0x9e3779b97f4a7c15ULL));
  };
  auto device_rng_for = [&](std::size_t c) {
    std::uint64_t stream =
        cfg.seed ^ (0xd1ceb004c0ffee11ULL + c * 0x9e3779b97f4a7c15ULL);
    return util::Rng(util::splitmix64(stream));
  };

  auto worker = [&]() {
    // The factory receives the config, so the network it builds already
    // honors the trace opt-in — no rebuild behind the factory's back.
    ResonatorNetwork net = factory(set, cfg);
    if (traces && !net.options().record_correct_trace) {
      throw std::invalid_argument(
          "record_correct_trace requested but the factory built a network "
          "without ResonatorOptions::record_correct_trace");
    }
    const bool batched = cfg.execution == TrialExecution::kBatched;
    std::unique_ptr<BatchedFactorizer> block_runner;
    if (batched) {
      block_runner = std::make_unique<BatchedFactorizer>(set, net.engine(),
                                                         net.options());
    }

    for (;;) {
      const std::size_t slot = next_chunk.fetch_add(1);
      if (slot >= nchunks) break;
      const std::size_t c = chunk0 + slot;
      const std::size_t t0 = std::max(begin, c * kTrialBlockAlign);
      const std::size_t t1 = std::min(c * kTrialBlockAlign + kTrialBlockAlign,
                                      end);

      std::vector<FactorizationProblem> problems;
      std::vector<util::Rng> rngs;
      problems.reserve(t1 - t0);
      rngs.reserve(t1 - t0);
      for (std::size_t t = t0; t < t1; ++t) {
        util::Rng r = trial_rng(t);
        problems.push_back(cfg.query_flip_prob > 0.0
                               ? generator->sample_noisy(cfg.query_flip_prob, r)
                               : generator->sample(r));
        rngs.push_back(r);  // post-sampling state, as a standalone run sees it
      }

      TrialStats local;
      if (batched) {
        util::Rng device_rng = device_rng_for(c);
        auto results = block_runner->run(problems, rngs, device_rng);
        for (std::size_t i = 0; i < results.size(); ++i) {
          local.accumulate(results[i],
                           problems[i].is_correct(results[i].decoded),
                           cfg.max_iterations);
        }
      } else {
        for (std::size_t i = 0; i < problems.size(); ++i) {
          ResonatorResult r = net.run(problems[i], rngs[i]);
          local.accumulate(r, problems[i].is_correct(r.decoded),
                           cfg.max_iterations);
        }
      }
      chunk_stats[slot] = std::move(local);
    }
  };

  auto guarded_worker = [&]() {
    try {
      worker();
    } catch (...) {
      util::MutexLock lock(worker_error.mutex);
      if (!worker_error.error) worker_error.error = std::current_exception();
    }
  };

  if (nthreads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (unsigned i = 0; i < nthreads; ++i) pool.emplace_back(guarded_worker);
    for (auto& th : pool) th.join();
    util::MutexLock lock(worker_error.mutex);
    if (worker_error.error) std::rethrow_exception(worker_error.error);
  }

  TrialStats total;
  if (traces) {
    total.correct_by_iteration.assign(cfg.max_iterations + 1, 0);
    total.correct_raw_by_iteration.assign(cfg.max_iterations + 1, 0);
  }
  for (const TrialStats& part : chunk_stats) total.merge_block(part);
  return total;
}

}  // namespace h3dfact::resonator
