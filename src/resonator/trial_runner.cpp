#include "resonator/trial_runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace h3dfact::resonator {

double TrialStats::accuracy_ci() const {
  return util::wilson_halfwidth(correct, trials);
}

double TrialStats::iterations_quantile(double q) const {
  if (trials == 0) return -1.0;
  const auto needed = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(trials)));
  if (iteration_samples.size() < needed || needed == 0) return -1.0;
  std::vector<double> xs = iteration_samples;
  std::sort(xs.begin(), xs.end());
  return xs[needed - 1];
}

double TrialStats::median_iterations() const {
  if (iteration_samples.empty()) return -1.0;
  return util::median(iteration_samples);
}

double TrialStats::accuracy_at(std::size_t k) const {
  if (trials == 0 || correct_by_iteration.empty()) return 0.0;
  const std::size_t idx = std::min(k, correct_by_iteration.size() - 1);
  return static_cast<double>(correct_by_iteration[idx]) /
         static_cast<double>(trials);
}

TrialStats run_trials(const TrialConfig& config, bool record_traces) {
  if (config.trials == 0) throw std::invalid_argument("zero trials");

  util::Rng master(config.seed);
  auto generator = std::make_shared<ProblemGenerator>(
      config.dim, config.factors, config.codebook_size, master);
  auto set = generator->codebooks_ptr();

  auto factory = config.factory;
  if (!factory) {
    const std::size_t cap = config.max_iterations;
    factory = [cap](std::shared_ptr<const hdc::CodebookSet> s) {
      return make_baseline(std::move(s), cap);
    };
  }

  unsigned nthreads = config.threads;
  if (nthreads == 0) {
    nthreads = std::max(1u, std::thread::hardware_concurrency());
  }
  nthreads = static_cast<unsigned>(
      std::min<std::size_t>(nthreads, config.trials));

  TrialStats total;
  total.trials = config.trials;
  if (record_traces) {
    total.correct_by_iteration.assign(config.max_iterations + 1, 0);
  }

  std::mutex merge_mutex;
  std::atomic<std::size_t> next_trial{0};

  auto worker = [&]() {
    // Each network instance is immutable/shared-safe; build once per thread.
    ResonatorNetwork net = factory(set);
    ResonatorOptions opts = net.options();
    if (record_traces && !opts.record_correct_trace) {
      opts.record_correct_trace = true;
      net = ResonatorNetwork(set, opts);
    }

    TrialStats local;
    std::vector<std::size_t> local_correct_hist;
    if (record_traces) local_correct_hist.assign(config.max_iterations + 1, 0);

    for (;;) {
      const std::size_t t = next_trial.fetch_add(1);
      if (t >= config.trials) break;
      util::Rng trial_rng(config.seed ^ (0xabcdef12345ULL + t * 0x9e3779b97f4a7c15ULL));
      FactorizationProblem problem =
          config.query_flip_prob > 0.0
              ? generator->sample_noisy(config.query_flip_prob, trial_rng)
              : generator->sample(trial_rng);

      ResonatorResult r = net.run(problem, trial_rng);
      const bool correct = problem.is_correct(r.decoded);
      if (r.solved) {
        ++local.solved;
        local.iterations_solved.add(static_cast<double>(r.iterations));
        local.iteration_samples.push_back(static_cast<double>(r.iterations));
      }
      if (correct) ++local.correct;
      if (r.cycle) ++local.cycles;
      if (record_traces) {
        // correct_trace[i] == decode correctness after iteration i+1; count
        // the first iteration from which the decode stays correct to the end.
        std::size_t first_stable = r.correct_trace.size() + 1;
        for (std::size_t i = r.correct_trace.size(); i-- > 0;) {
          if (r.correct_trace[i]) {
            first_stable = i + 1;
          } else {
            break;
          }
        }
        // A solved-and-correct run stays correct after it stops.
        if (first_stable <= r.correct_trace.size() ||
            (r.solved && correct)) {
          const std::size_t from = std::min(first_stable, config.max_iterations);
          for (std::size_t k = from; k <= config.max_iterations; ++k) {
            ++local_correct_hist[k];
          }
        }
      }
    }

    std::lock_guard<std::mutex> lock(merge_mutex);
    total.solved += local.solved;
    total.correct += local.correct;
    total.cycles += local.cycles;
    total.iterations_solved.merge(local.iterations_solved);
    total.iteration_samples.insert(total.iteration_samples.end(),
                                   local.iteration_samples.begin(),
                                   local.iteration_samples.end());
    if (record_traces) {
      for (std::size_t k = 0; k < local_correct_hist.size(); ++k) {
        total.correct_by_iteration[k] += local_correct_hist[k];
      }
    }
  };

  if (nthreads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (unsigned i = 0; i < nthreads; ++i) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  return total;
}

}  // namespace h3dfact::resonator
