#include "resonator/resonator.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "hdc/kernels/backend.hpp"
#include "resonator/detail.hpp"

namespace h3dfact::resonator {

hdc::CoeffBlock MvmEngine::similarity_batch(
    std::size_t factor, std::span<const hdc::BipolarVector> us,
    util::Rng& rng) {
  std::vector<std::vector<int>> items;
  items.reserve(us.size());
  for (const auto& u : us) items.push_back(similarity(factor, u, rng));
  return hdc::CoeffBlock::from_items(items);
}

hdc::CoeffBlock MvmEngine::project_batch(std::size_t factor,
                                         const hdc::CoeffBlock& coeffs,
                                         util::Rng& rng) {
  std::vector<std::vector<int>> items;
  items.reserve(coeffs.batch);
  for (std::size_t b = 0; b < coeffs.batch; ++b) {
    items.push_back(project(factor, coeffs.item(b), rng));
  }
  return hdc::CoeffBlock::from_items(items);
}

ExactMvmEngine::ExactMvmEngine(std::shared_ptr<const hdc::CodebookSet> set)
    : set_(std::move(set)) {
  if (!set_) throw std::invalid_argument("null codebook set");
}

ExactMvmEngine::ExactMvmEngine(std::shared_ptr<const hdc::CodebookSet> set,
                               const hdc::kernels::KernelBackend& backend)
    : set_(std::move(set)), backend_(&backend) {
  if (!set_) throw std::invalid_argument("null codebook set");
}

std::vector<int> ExactMvmEngine::similarity(std::size_t factor,
                                            const hdc::BipolarVector& u,
                                            util::Rng&) {
  const auto& k = backend_ ? *backend_ : hdc::kernels::active();
  return set_->book(factor).similarity(u, k);
}

std::vector<int> ExactMvmEngine::project(std::size_t factor,
                                         const std::vector<int>& coeffs,
                                         util::Rng&) {
  const auto& k = backend_ ? *backend_ : hdc::kernels::active();
  return set_->book(factor).project(coeffs, k);
}

hdc::CoeffBlock ExactMvmEngine::similarity_batch(
    std::size_t factor, std::span<const hdc::BipolarVector> us, util::Rng&) {
  const auto& k = backend_ ? *backend_ : hdc::kernels::active();
  return set_->book(factor).similarity_batch(us, k);
}

hdc::CoeffBlock ExactMvmEngine::project_batch(std::size_t factor,
                                              const hdc::CoeffBlock& coeffs,
                                              util::Rng&) {
  const auto& k = backend_ ? *backend_ : hdc::kernels::active();
  return set_->book(factor).project_batch(coeffs, k);
}

ResonatorNetwork::ResonatorNetwork(std::shared_ptr<const hdc::CodebookSet> set,
                                   ResonatorOptions options)
    : set_(std::move(set)),
      engine_(std::make_shared<ExactMvmEngine>(set_)),
      options_(std::move(options)) {
  if (!set_ || set_->factors() == 0) {
    throw std::invalid_argument("resonator needs a non-empty codebook set");
  }
}

ResonatorNetwork::ResonatorNetwork(std::shared_ptr<const hdc::CodebookSet> set,
                                   std::shared_ptr<MvmEngine> engine,
                                   ResonatorOptions options)
    : set_(std::move(set)), engine_(std::move(engine)), options_(std::move(options)) {
  if (!set_ || set_->factors() == 0) {
    throw std::invalid_argument("resonator needs a non-empty codebook set");
  }
  if (!engine_) throw std::invalid_argument("null MVM engine");
}

using detail::argmax;
using detail::joint_hash;

ResonatorResult ResonatorNetwork::run(const FactorizationProblem& problem,
                                      util::Rng& rng) const {
  if (problem.codebooks.get() != set_.get() &&
      (problem.factors() != set_->factors() || problem.dim() != set_->dim())) {
    throw std::invalid_argument("problem incompatible with resonator codebooks");
  }
  const std::size_t F = set_->factors();
  const std::size_t D = set_->dim();
  const bool deterministic_run =
      !options_.channel || options_.channel->deterministic();
  PhaseProfiler* prof = options_.profiler;

  // Initial estimates: superposition of each codebook (or random).
  std::vector<hdc::BipolarVector> est(F);
  for (std::size_t f = 0; f < F; ++f) {
    if (options_.random_init) {
      est[f] = hdc::BipolarVector::random(D, rng);
    } else {
      est[f] = options_.random_tie_break ? set_->book(f).superposition(rng)
                                         : set_->book(f).superposition();
    }
  }

  // Running product P = s ⊙ x̂_1 ⊙ ... ⊙ x̂_F, so that u_f = P ⊙ x̂_f.
  auto total_product = [&](const std::vector<hdc::BipolarVector>& e) {
    hdc::BipolarVector p = problem.query;
    for (const auto& v : e) p.bind_inplace(v);
    return p;
  };
  hdc::BipolarVector P = total_product(est);

  ResonatorResult result;
  result.decoded.assign(F, 0);
  if (options_.record_correct_trace) {
    // trace[0]: pre-iteration decode of the initial estimates. Uses the
    // ideal readout (exact nearest-neighbour), so it is a property of the
    // state alone and consumes no engine randomness.
    std::vector<std::size_t> decoded0(F);
    for (std::size_t f = 0; f < F; ++f) {
      decoded0[f] = set_->book(f).nearest(P.bind(est[f]));
    }
    result.correct_trace.push_back(problem.is_correct(decoded0) ? 1 : 0);
  }
  LimitCycleDetector cycles;
  if (options_.detect_limit_cycles && deterministic_run) {
    cycles.observe(joint_hash(est), 0);
  }

  const auto success_dot = static_cast<long long>(
      options_.success_threshold * static_cast<double>(D));

  // Synchronous mode routes every factor's MVMs through the engine's
  // batched entry points (batch of one problem here): all F factors read the
  // same previous state, so the schedule is exactly the one BatchedFactorizer
  // fans many concurrent problems into.
  const bool batched_path = options_.update == UpdateMode::kSynchronous;

  for (std::size_t t = 1; t <= options_.max_iterations; ++t) {
    // Synchronous mode reads every factor against the previous state.
    const std::vector<hdc::BipolarVector>* read_state = &est;
    std::vector<hdc::BipolarVector> prev;
    hdc::BipolarVector P_read = P;
    if (options_.update == UpdateMode::kSynchronous) {
      prev = est;
      read_state = &prev;
    }

    for (std::size_t f = 0; f < F; ++f) {
      // Unbind: u_f = s ⊙ ⊙_{f'≠f} x̂_{f'} = P ⊙ x̂_f.
      hdc::BipolarVector u;
      {
        PhaseProfiler::Scope scope(prof, Phase::kUnbind);
        u = (options_.update == UpdateMode::kSynchronous ? P_read : P)
                .bind((*read_state)[f]);
        if (prof) prof->add_ops(Phase::kUnbind, 2 * D);
      }

      // Similarity MVM.
      std::vector<int> a;
      {
        PhaseProfiler::Scope scope(prof, Phase::kSimilarity);
        if (batched_path) {
          a = engine_
                  ->similarity_batch(
                      f, std::span<const hdc::BipolarVector>(&u, 1), rng)
                  .item(0);
        } else {
          a = engine_->similarity(f, u, rng);
        }
        if (prof) prof->add_ops(Phase::kSimilarity, set_->book(f).size() * D);
      }
      result.decoded[f] = argmax(a);
      if (options_.clip_negative_similarity) {
        for (auto& v : a) v = std::max(v, 0);
      }

      // Similarity channel (noise + ADC).
      {
        PhaseProfiler::Scope scope(prof, Phase::kChannel);
        if (options_.channel) a = options_.channel->apply(a, rng);
        if (prof) prof->add_ops(Phase::kChannel, a.size());
      }

      // Projection MVM.
      std::vector<int> y;
      {
        PhaseProfiler::Scope scope(prof, Phase::kProjection);
        if (batched_path) {
          hdc::CoeffBlock block;
          block.size = a.size();
          block.batch = 1;
          block.data = a;
          y = engine_->project_batch(f, block, rng).item(0);
        } else {
          y = engine_->project(f, a, rng);
        }
        if (prof) prof->add_ops(Phase::kProjection, set_->book(f).size() * D);
      }

      // Activation. Ties break deterministically in deterministic runs to
      // keep the dynamics a pure function of state; randomly otherwise.
      hdc::BipolarVector next;
      {
        PhaseProfiler::Scope scope(prof, Phase::kActivation);
        const bool random_ties = options_.random_tie_break || !deterministic_run;
        next = random_ties ? hdc::sign_of(y, rng) : hdc::sign_of(y);
        if (prof) prof->add_ops(Phase::kActivation, D);
      }

      // Maintain the running product: P ⊙ old_f ⊙ new_f.
      P.bind_inplace(est[f]);
      P.bind_inplace(next);
      est[f] = std::move(next);
    }

    result.iterations = t;

    // Decode + convergence check.
    {
      PhaseProfiler::Scope scope(prof, Phase::kDecode);
      hdc::BipolarVector composed = set_->compose(result.decoded);
      const long long d = composed.dot(problem.query);
      if (prof) prof->add_ops(Phase::kDecode, (F + 1) * D);
      if (options_.record_correct_trace) {
        result.correct_trace.push_back(
            problem.is_correct(result.decoded) ? 1 : 0);
      }
      if (d >= success_dot) {
        result.solved = true;
        return result;
      }
    }

    if (options_.detect_limit_cycles && deterministic_run) {
      if (auto info = cycles.observe(joint_hash(est), t)) {
        result.cycle = info;
        if (options_.stop_on_cycle) return result;
      }
    }
  }

  result.hit_iteration_cap = true;
  return result;
}

ResonatorNetwork make_baseline(std::shared_ptr<const hdc::CodebookSet> set,
                               std::size_t max_iterations) {
  ResonatorOptions opts;
  opts.max_iterations = max_iterations;
  opts.channel = nullptr;
  return ResonatorNetwork(std::move(set), opts);
}

ResonatorNetwork make_h3dfact(std::shared_ptr<const hdc::CodebookSet> set,
                              std::size_t max_iterations, int adc_bits,
                              double sigma_frac) {
  ResonatorOptions opts;
  opts.max_iterations = max_iterations;
  opts.channel = make_h3dfact_channel(set->dim(), adc_bits, sigma_frac);
  opts.detect_limit_cycles = false;
  return ResonatorNetwork(std::move(set), opts);
}

}  // namespace h3dfact::resonator
