#include "resonator/resonator.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "hdc/kernels/backend.hpp"
#include "resonator/detail.hpp"

namespace h3dfact::resonator {

hdc::CoeffBlock MvmEngine::similarity_batch(
    std::size_t factor, std::span<const hdc::BipolarVector> us,
    util::Rng& rng) {
  std::vector<std::vector<int>> items;
  items.reserve(us.size());
  for (const auto& u : us) items.push_back(similarity(factor, u, rng));
  return hdc::CoeffBlock::from_items(items);
}

hdc::CoeffBlock MvmEngine::project_batch(std::size_t factor,
                                         const hdc::CoeffBlock& coeffs,
                                         util::Rng& rng) {
  std::vector<std::vector<int>> items;
  items.reserve(coeffs.batch);
  for (std::size_t b = 0; b < coeffs.batch; ++b) {
    items.push_back(project(factor, coeffs.item(b), rng));
  }
  return hdc::CoeffBlock::from_items(items);
}

ExactMvmEngine::ExactMvmEngine(std::shared_ptr<const hdc::CodebookSet> set)
    : set_(std::move(set)) {
  if (!set_) throw std::invalid_argument("null codebook set");
}

ExactMvmEngine::ExactMvmEngine(std::shared_ptr<const hdc::CodebookSet> set,
                               const hdc::kernels::KernelBackend& backend)
    : set_(std::move(set)), backend_(&backend) {
  if (!set_) throw std::invalid_argument("null codebook set");
}

std::vector<int> ExactMvmEngine::similarity(std::size_t factor,
                                            const hdc::BipolarVector& u,
                                            util::Rng&) {
  const auto& k = backend_ ? *backend_ : hdc::kernels::active();
  return set_->book(factor).similarity(u, k);
}

std::vector<int> ExactMvmEngine::project(std::size_t factor,
                                         const std::vector<int>& coeffs,
                                         util::Rng&) {
  const auto& k = backend_ ? *backend_ : hdc::kernels::active();
  return set_->book(factor).project(coeffs, k);
}

hdc::CoeffBlock ExactMvmEngine::similarity_batch(
    std::size_t factor, std::span<const hdc::BipolarVector> us, util::Rng&) {
  const auto& k = backend_ ? *backend_ : hdc::kernels::active();
  return set_->book(factor).similarity_batch(us, k);
}

hdc::CoeffBlock ExactMvmEngine::project_batch(std::size_t factor,
                                              const hdc::CoeffBlock& coeffs,
                                              util::Rng&) {
  const auto& k = backend_ ? *backend_ : hdc::kernels::active();
  return set_->book(factor).project_batch(coeffs, k);
}

ResonatorNetwork::ResonatorNetwork(std::shared_ptr<const hdc::CodebookSet> set,
                                   ResonatorOptions options)
    : set_(std::move(set)),
      engine_(std::make_shared<ExactMvmEngine>(set_)),
      options_(std::move(options)) {
  if (!set_ || set_->factors() == 0) {
    throw std::invalid_argument("resonator needs a non-empty codebook set");
  }
}

ResonatorNetwork::ResonatorNetwork(std::shared_ptr<const hdc::CodebookSet> set,
                                   std::shared_ptr<MvmEngine> engine,
                                   ResonatorOptions options)
    : set_(std::move(set)), engine_(std::move(engine)), options_(std::move(options)) {
  if (!set_ || set_->factors() == 0) {
    throw std::invalid_argument("resonator needs a non-empty codebook set");
  }
  if (!engine_) throw std::invalid_argument("null MVM engine");
}

using detail::argmax;
using detail::joint_hash;

ResonatorResult ResonatorNetwork::run(const FactorizationProblem& problem,
                                      util::Rng& rng) const {
  return run(problem, rng, SnapshotPolicy{});
}

ResonatorResult ResonatorNetwork::run(const FactorizationProblem& problem,
                                      util::Rng& rng,
                                      const SnapshotPolicy& snapshots) const {
  if (problem.codebooks.get() != set_.get() &&
      (problem.factors() != set_->factors() || problem.dim() != set_->dim())) {
    throw std::invalid_argument("problem incompatible with resonator codebooks");
  }
  const std::size_t F = set_->factors();
  const std::size_t D = set_->dim();
  const bool deterministic_run =
      !options_.channel || options_.channel->deterministic();

  // Initial estimates: superposition of each codebook (or random).
  std::vector<hdc::BipolarVector> est(F);
  for (std::size_t f = 0; f < F; ++f) {
    if (options_.random_init) {
      est[f] = hdc::BipolarVector::random(D, rng);
    } else {
      est[f] = options_.random_tie_break ? set_->book(f).superposition(rng)
                                         : set_->book(f).superposition();
    }
  }

  ResonatorResult result;
  result.decoded.assign(F, 0);
  if (options_.record_correct_trace) {
    // trace[0]: pre-iteration decode of the initial estimates. Uses the
    // ideal readout (exact nearest-neighbour), so it is a property of the
    // state alone and consumes no engine randomness.
    hdc::BipolarVector P0 = problem.query;
    for (const auto& v : est) P0.bind_inplace(v);
    std::vector<std::size_t> decoded0(F);
    for (std::size_t f = 0; f < F; ++f) {
      decoded0[f] = set_->book(f).nearest(P0.bind(est[f]));
    }
    result.correct_trace.push_back(problem.is_correct(decoded0) ? 1 : 0);
  }
  LimitCycleDetector cycles;
  if (options_.detect_limit_cycles && deterministic_run) {
    cycles.observe(joint_hash(est), 0);
  }

  return iterate(problem, rng, est, std::move(result), cycles, 1, snapshots);
}

ResonatorResult ResonatorNetwork::resume(const ResonatorSnapshot& snapshot,
                                         util::Rng& rng,
                                         const SnapshotPolicy& snapshots) const {
  const std::uint64_t have = hdc::set_fingerprint(*set_);
  if (snapshot.codebook_fingerprint != have) {
    throw std::runtime_error(
        "resonator snapshot was taken over a different codebook set "
        "(snapshot fingerprint " + std::to_string(snapshot.codebook_fingerprint) +
        ", network " + std::to_string(have) + ")");
  }
  if (snapshot.options_digest != options_fingerprint(options_)) {
    throw std::runtime_error(
        "resonator snapshot was taken under different resonator options; "
        "resuming would diverge from the uninterrupted run");
  }
  if (snapshot.estimates.size() != set_->factors() ||
      snapshot.decoded.size() != set_->factors() ||
      snapshot.query.dim() != set_->dim()) {
    throw std::runtime_error("resonator snapshot shape does not match the "
                             "network's codebook set");
  }

  FactorizationProblem problem;
  problem.codebooks = set_;
  problem.query = snapshot.query;
  problem.ground_truth = snapshot.ground_truth;
  problem.query_noise = snapshot.query_noise;

  rng.restore_state(snapshot.rng);

  ResonatorResult result;
  result.decoded = snapshot.decoded;
  result.correct_trace = snapshot.correct_trace;
  result.iterations = static_cast<std::size_t>(snapshot.iteration);

  LimitCycleDetector cycles;
  cycles.restore(snapshot.cycle_seen, snapshot.cycle_found);

  std::vector<hdc::BipolarVector> est = snapshot.estimates;
  return iterate(problem, rng, est, std::move(result), cycles,
                 static_cast<std::size_t>(snapshot.iteration) + 1, snapshots);
}

ResonatorResult ResonatorNetwork::iterate(const FactorizationProblem& problem,
                                          util::Rng& rng,
                                          std::vector<hdc::BipolarVector>& est,
                                          ResonatorResult result,
                                          LimitCycleDetector& cycles,
                                          std::size_t start_iteration,
                                          const SnapshotPolicy& snapshots) const {
  const std::size_t F = set_->factors();
  const std::size_t D = set_->dim();
  const bool deterministic_run =
      !options_.channel || options_.channel->deterministic();
  PhaseProfiler* prof = options_.profiler;

  // Running product P = s ⊙ x̂_1 ⊙ ... ⊙ x̂_F, so that u_f = P ⊙ x̂_f.
  // Recomputed from scratch here so a resumed run rebuilds the identical
  // bits (bind is XOR — exact, order-free).
  hdc::BipolarVector P = problem.query;
  for (const auto& v : est) P.bind_inplace(v);

  const auto success_dot = static_cast<long long>(
      options_.success_threshold * static_cast<double>(D));

  // Synchronous mode routes every factor's MVMs through the engine's
  // batched entry points (batch of one problem here): all F factors read the
  // same previous state, so the schedule is exactly the one BatchedFactorizer
  // fans many concurrent problems into.
  const bool batched_path = options_.update == UpdateMode::kSynchronous;

  for (std::size_t t = start_iteration; t <= options_.max_iterations; ++t) {
    // Synchronous mode reads every factor against the previous state.
    const std::vector<hdc::BipolarVector>* read_state = &est;
    std::vector<hdc::BipolarVector> prev;
    hdc::BipolarVector P_read = P;
    if (options_.update == UpdateMode::kSynchronous) {
      prev = est;
      read_state = &prev;
    }

    for (std::size_t f = 0; f < F; ++f) {
      // Unbind: u_f = s ⊙ ⊙_{f'≠f} x̂_{f'} = P ⊙ x̂_f.
      hdc::BipolarVector u;
      {
        PhaseProfiler::Scope scope(prof, Phase::kUnbind);
        u = (options_.update == UpdateMode::kSynchronous ? P_read : P)
                .bind((*read_state)[f]);
        if (prof) prof->add_ops(Phase::kUnbind, 2 * D);
      }

      // Similarity MVM.
      std::vector<int> a;
      {
        PhaseProfiler::Scope scope(prof, Phase::kSimilarity);
        if (batched_path) {
          a = engine_
                  ->similarity_batch(
                      f, std::span<const hdc::BipolarVector>(&u, 1), rng)
                  .item(0);
        } else {
          a = engine_->similarity(f, u, rng);
        }
        if (prof) prof->add_ops(Phase::kSimilarity, set_->book(f).size() * D);
      }
      result.decoded[f] = argmax(a);
      if (options_.clip_negative_similarity) {
        for (auto& v : a) v = std::max(v, 0);
      }

      // Similarity channel (noise + ADC).
      {
        PhaseProfiler::Scope scope(prof, Phase::kChannel);
        if (options_.channel) a = options_.channel->apply(a, rng);
        if (prof) prof->add_ops(Phase::kChannel, a.size());
      }

      // Projection MVM.
      std::vector<int> y;
      {
        PhaseProfiler::Scope scope(prof, Phase::kProjection);
        if (batched_path) {
          hdc::CoeffBlock block;
          block.size = a.size();
          block.batch = 1;
          block.data = a;
          y = engine_->project_batch(f, block, rng).item(0);
        } else {
          y = engine_->project(f, a, rng);
        }
        if (prof) prof->add_ops(Phase::kProjection, set_->book(f).size() * D);
      }

      // Activation. Ties break deterministically in deterministic runs to
      // keep the dynamics a pure function of state; randomly otherwise.
      hdc::BipolarVector next;
      {
        PhaseProfiler::Scope scope(prof, Phase::kActivation);
        const bool random_ties = options_.random_tie_break || !deterministic_run;
        next = random_ties ? hdc::sign_of(y, rng) : hdc::sign_of(y);
        if (prof) prof->add_ops(Phase::kActivation, D);
      }

      // Maintain the running product: P ⊙ old_f ⊙ new_f.
      P.bind_inplace(est[f]);
      P.bind_inplace(next);
      est[f] = std::move(next);
    }

    result.iterations = t;

    // Decode + convergence check.
    {
      PhaseProfiler::Scope scope(prof, Phase::kDecode);
      hdc::BipolarVector composed = set_->compose(result.decoded);
      const long long d = composed.dot(problem.query);
      if (prof) prof->add_ops(Phase::kDecode, (F + 1) * D);
      if (options_.record_correct_trace) {
        result.correct_trace.push_back(
            problem.is_correct(result.decoded) ? 1 : 0);
      }
      if (d >= success_dot) {
        result.solved = true;
        return result;
      }
    }

    if (options_.detect_limit_cycles && deterministic_run) {
      if (auto info = cycles.observe(joint_hash(est), t)) {
        result.cycle = info;
        if (options_.stop_on_cycle) return result;
      }
    }

    if (snapshots.enabled() && t % snapshots.every == 0) {
      ResonatorSnapshot snap;
      snap.iteration = t;
      snap.query = problem.query;
      snap.ground_truth = problem.ground_truth;
      snap.ground_truth_known = !problem.ground_truth.empty();
      snap.query_noise = problem.query_noise;
      snap.estimates = est;
      snap.decoded = result.decoded;
      snap.correct_trace = result.correct_trace;
      snap.rng = rng.save_state();
      snap.cycle_seen = cycles.entries();
      snap.cycle_found = cycles.info();
      snap.codebook_fingerprint = hdc::set_fingerprint(*set_);
      snap.options_digest = options_fingerprint(options_);
      snapshots.sink(snap, snapshots.ctx);
    }
  }

  result.hit_iteration_cap = true;
  return result;
}

std::uint64_t options_fingerprint(const ResonatorOptions& options) {
  // FNV-1a over every dynamics-relevant field. The channel's internal
  // parameters are not reachable generically; its presence and determinism
  // class are (they decide tie-break + cycle-detection behavior). The
  // profiler pointer is observability only and excluded.
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix64 = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  mix64(static_cast<std::uint64_t>(options.update));
  mix64(options.max_iterations);
  mix64(options.channel ? (options.channel->deterministic() ? 1 : 2) : 0);
  mix64(options.random_init ? 1 : 0);
  mix64(options.random_tie_break ? 1 : 0);
  mix64(options.clip_negative_similarity ? 1 : 0);
  std::uint64_t threshold_bits = 0;
  static_assert(sizeof threshold_bits == sizeof options.success_threshold);
  std::memcpy(&threshold_bits, &options.success_threshold,
              sizeof threshold_bits);
  mix64(threshold_bits);
  mix64(options.detect_limit_cycles ? 1 : 0);
  mix64(options.stop_on_cycle ? 1 : 0);
  mix64(options.record_correct_trace ? 1 : 0);
  return h;
}

ResonatorNetwork make_baseline(std::shared_ptr<const hdc::CodebookSet> set,
                               std::size_t max_iterations) {
  ResonatorOptions opts;
  opts.max_iterations = max_iterations;
  opts.channel = nullptr;
  return ResonatorNetwork(std::move(set), opts);
}

ResonatorNetwork make_h3dfact(std::shared_ptr<const hdc::CodebookSet> set,
                              std::size_t max_iterations, int adc_bits,
                              double sigma_frac) {
  ResonatorOptions opts;
  opts.max_iterations = max_iterations;
  opts.channel = make_h3dfact_channel(set->dim(), adc_bits, sigma_frac);
  opts.detect_limit_cycles = false;
  return ResonatorNetwork(std::move(set), opts);
}

}  // namespace h3dfact::resonator
