#include "resonator/resonator.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

namespace h3dfact::resonator {

ExactMvmEngine::ExactMvmEngine(std::shared_ptr<const hdc::CodebookSet> set)
    : set_(std::move(set)) {
  if (!set_) throw std::invalid_argument("null codebook set");
}

std::vector<int> ExactMvmEngine::similarity(std::size_t factor,
                                            const hdc::BipolarVector& u,
                                            util::Rng&) {
  return set_->book(factor).similarity(u);
}

std::vector<int> ExactMvmEngine::project(std::size_t factor,
                                         const std::vector<int>& coeffs,
                                         util::Rng&) {
  return set_->book(factor).project(coeffs);
}

ResonatorNetwork::ResonatorNetwork(std::shared_ptr<const hdc::CodebookSet> set,
                                   ResonatorOptions options)
    : set_(std::move(set)),
      engine_(std::make_shared<ExactMvmEngine>(set_)),
      options_(std::move(options)) {
  if (!set_ || set_->factors() == 0) {
    throw std::invalid_argument("resonator needs a non-empty codebook set");
  }
}

ResonatorNetwork::ResonatorNetwork(std::shared_ptr<const hdc::CodebookSet> set,
                                   std::shared_ptr<MvmEngine> engine,
                                   ResonatorOptions options)
    : set_(std::move(set)), engine_(std::move(engine)), options_(std::move(options)) {
  if (!set_ || set_->factors() == 0) {
    throw std::invalid_argument("resonator needs a non-empty codebook set");
  }
  if (!engine_) throw std::invalid_argument("null MVM engine");
}

namespace {

std::size_t argmax(const std::vector<int>& xs) {
  return static_cast<std::size_t>(
      std::max_element(xs.begin(), xs.end()) - xs.begin());
}

std::uint64_t joint_hash(const std::vector<hdc::BipolarVector>& estimates) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const auto& e : estimates) {
    h ^= e.hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace

ResonatorResult ResonatorNetwork::run(const FactorizationProblem& problem,
                                      util::Rng& rng) const {
  if (problem.codebooks.get() != set_.get() &&
      (problem.factors() != set_->factors() || problem.dim() != set_->dim())) {
    throw std::invalid_argument("problem incompatible with resonator codebooks");
  }
  const std::size_t F = set_->factors();
  const std::size_t D = set_->dim();
  const bool deterministic_run =
      !options_.channel || options_.channel->deterministic();
  PhaseProfiler* prof = options_.profiler;

  // Initial estimates: superposition of each codebook (or random).
  std::vector<hdc::BipolarVector> est(F);
  for (std::size_t f = 0; f < F; ++f) {
    if (options_.random_init) {
      est[f] = hdc::BipolarVector::random(D, rng);
    } else {
      est[f] = options_.random_tie_break ? set_->book(f).superposition(rng)
                                         : set_->book(f).superposition();
    }
  }

  // Running product P = s ⊙ x̂_1 ⊙ ... ⊙ x̂_F, so that u_f = P ⊙ x̂_f.
  auto total_product = [&](const std::vector<hdc::BipolarVector>& e) {
    hdc::BipolarVector p = problem.query;
    for (const auto& v : e) p.bind_inplace(v);
    return p;
  };
  hdc::BipolarVector P = total_product(est);

  ResonatorResult result;
  result.decoded.assign(F, 0);
  LimitCycleDetector cycles;
  if (options_.detect_limit_cycles && deterministic_run) {
    cycles.observe(joint_hash(est), 0);
  }

  const auto success_dot = static_cast<long long>(
      options_.success_threshold * static_cast<double>(D));

  for (std::size_t t = 1; t <= options_.max_iterations; ++t) {
    // Synchronous mode reads every factor against the previous state.
    const std::vector<hdc::BipolarVector>* read_state = &est;
    std::vector<hdc::BipolarVector> prev;
    hdc::BipolarVector P_read = P;
    if (options_.update == UpdateMode::kSynchronous) {
      prev = est;
      read_state = &prev;
    }

    for (std::size_t f = 0; f < F; ++f) {
      // Unbind: u_f = s ⊙ ⊙_{f'≠f} x̂_{f'} = P ⊙ x̂_f.
      hdc::BipolarVector u;
      {
        PhaseProfiler::Scope scope(prof, Phase::kUnbind);
        u = (options_.update == UpdateMode::kSynchronous ? P_read : P)
                .bind((*read_state)[f]);
        if (prof) prof->add_ops(Phase::kUnbind, 2 * D);
      }

      // Similarity MVM.
      std::vector<int> a;
      {
        PhaseProfiler::Scope scope(prof, Phase::kSimilarity);
        a = engine_->similarity(f, u, rng);
        if (prof) prof->add_ops(Phase::kSimilarity, set_->book(f).size() * D);
      }
      result.decoded[f] = argmax(a);
      if (options_.clip_negative_similarity) {
        for (auto& v : a) v = std::max(v, 0);
      }

      // Similarity channel (noise + ADC).
      {
        PhaseProfiler::Scope scope(prof, Phase::kChannel);
        if (options_.channel) a = options_.channel->apply(a, rng);
        if (prof) prof->add_ops(Phase::kChannel, a.size());
      }

      // Projection MVM.
      std::vector<int> y;
      {
        PhaseProfiler::Scope scope(prof, Phase::kProjection);
        y = engine_->project(f, a, rng);
        if (prof) prof->add_ops(Phase::kProjection, set_->book(f).size() * D);
      }

      // Activation. Ties break deterministically in deterministic runs to
      // keep the dynamics a pure function of state; randomly otherwise.
      hdc::BipolarVector next;
      {
        PhaseProfiler::Scope scope(prof, Phase::kActivation);
        const bool random_ties = options_.random_tie_break || !deterministic_run;
        next = random_ties ? hdc::sign_of(y, rng) : hdc::sign_of(y);
        if (prof) prof->add_ops(Phase::kActivation, D);
      }

      // Maintain the running product: P ⊙ old_f ⊙ new_f.
      P.bind_inplace(est[f]);
      P.bind_inplace(next);
      est[f] = std::move(next);
    }

    result.iterations = t;

    // Decode + convergence check.
    {
      PhaseProfiler::Scope scope(prof, Phase::kDecode);
      hdc::BipolarVector composed = set_->compose(result.decoded);
      const long long d = composed.dot(problem.query);
      if (prof) prof->add_ops(Phase::kDecode, (F + 1) * D);
      if (options_.record_correct_trace) {
        result.correct_trace.push_back(
            problem.is_correct(result.decoded) ? 1 : 0);
      }
      if (d >= success_dot) {
        result.solved = true;
        return result;
      }
    }

    if (options_.detect_limit_cycles && deterministic_run) {
      if (auto info = cycles.observe(joint_hash(est), t)) {
        result.cycle = info;
        if (options_.stop_on_cycle) return result;
      }
    }
  }

  result.hit_iteration_cap = true;
  return result;
}

ResonatorNetwork make_baseline(std::shared_ptr<const hdc::CodebookSet> set,
                               std::size_t max_iterations) {
  ResonatorOptions opts;
  opts.max_iterations = max_iterations;
  opts.channel = nullptr;
  return ResonatorNetwork(std::move(set), opts);
}

ResonatorNetwork make_h3dfact(std::shared_ptr<const hdc::CodebookSet> set,
                              std::size_t max_iterations, int adc_bits,
                              double sigma_frac) {
  ResonatorOptions opts;
  opts.max_iterations = max_iterations;
  opts.channel = make_h3dfact_channel(set->dim(), adc_bits, sigma_frac);
  opts.detect_limit_cycles = false;
  return ResonatorNetwork(std::move(set), opts);
}

}  // namespace h3dfact::resonator
