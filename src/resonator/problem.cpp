#include "resonator/problem.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

namespace h3dfact::resonator {

ProblemGenerator::ProblemGenerator(std::size_t dim, std::size_t factors,
                                   std::size_t codebook_size, util::Rng& rng)
    : set_(std::make_shared<hdc::CodebookSet>(dim, factors, codebook_size, rng)) {}

ProblemGenerator::ProblemGenerator(std::shared_ptr<const hdc::CodebookSet> set)
    : set_(std::move(set)) {
  if (!set_ || set_->factors() == 0) {
    throw std::invalid_argument("ProblemGenerator needs a non-empty codebook set");
  }
}

FactorizationProblem ProblemGenerator::sample(util::Rng& rng) const {
  std::vector<std::size_t> idx(set_->factors());
  for (std::size_t f = 0; f < set_->factors(); ++f) {
    idx[f] = rng.below(set_->book(f).size());
  }
  return make(idx);
}

FactorizationProblem ProblemGenerator::sample_noisy(double flip_prob,
                                                    util::Rng& rng) const {
  FactorizationProblem p = sample(rng);
  p.query = p.query.with_flips(flip_prob, rng);
  p.query_noise = flip_prob;
  return p;
}

FactorizationProblem ProblemGenerator::make(
    const std::vector<std::size_t>& indices) const {
  FactorizationProblem p;
  p.codebooks = set_;
  p.ground_truth = indices;
  p.query = set_->compose(indices);
  return p;
}

}  // namespace h3dfact::resonator
