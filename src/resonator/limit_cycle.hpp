#pragma once
// Limit-cycle detection for the deterministic resonator (Sec. II-B, Fig. 2b).
//
// The deterministic dynamics are a map on a finite state space, so any
// non-converging trajectory must eventually revisit a state and then cycle
// forever. We hash the joint factor state each iteration and detect the
// first revisit, reporting the cycle entry time and cycle length.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace h3dfact::resonator {

/// Result of a detected revisit.
struct CycleInfo {
  std::size_t first_seen = 0;  ///< iteration at which the state first occurred
  std::size_t revisit = 0;     ///< iteration of the revisit
  [[nodiscard]] std::size_t length() const { return revisit - first_seen; }
};

/// Hash-based state-revisit detector.
class LimitCycleDetector {
 public:
  /// Record the joint-state hash for iteration `t`.
  /// Returns cycle info the first time a previously-seen state recurs.
  std::optional<CycleInfo> observe(std::uint64_t state_hash, std::size_t t);

  [[nodiscard]] bool cycle_found() const { return found_.has_value(); }
  [[nodiscard]] const std::optional<CycleInfo>& info() const { return found_; }

  void reset();

  /// Every (state hash, first-seen iteration) pair observed so far, sorted
  /// by hash so serialization is byte-deterministic (checkpointing).
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::size_t>> entries()
      const;

  /// Rebuild from serialized entries + found state: the detector behaves
  /// bit-identically to the one that produced entries()/info().
  void restore(
      const std::vector<std::pair<std::uint64_t, std::size_t>>& entries,
      std::optional<CycleInfo> found);

 private:
  std::unordered_map<std::uint64_t, std::size_t> seen_;
  std::optional<CycleInfo> found_;
};

}  // namespace h3dfact::resonator
