#include "resonator/limit_cycle.hpp"

#include <cstdint>
#include <optional>
namespace h3dfact::resonator {

std::optional<CycleInfo> LimitCycleDetector::observe(std::uint64_t state_hash,
                                                     std::size_t t) {
  auto [it, inserted] = seen_.emplace(state_hash, t);
  if (inserted) return std::nullopt;
  if (!found_) {
    CycleInfo info;
    info.first_seen = it->second;
    info.revisit = t;
    found_ = info;
  }
  return found_;
}

void LimitCycleDetector::reset() {
  seen_.clear();
  found_.reset();
}

}  // namespace h3dfact::resonator
