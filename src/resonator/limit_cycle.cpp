#include "resonator/limit_cycle.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace h3dfact::resonator {

std::optional<CycleInfo> LimitCycleDetector::observe(std::uint64_t state_hash,
                                                     std::size_t t) {
  auto [it, inserted] = seen_.emplace(state_hash, t);
  if (inserted) return std::nullopt;
  if (!found_) {
    CycleInfo info;
    info.first_seen = it->second;
    info.revisit = t;
    found_ = info;
  }
  return found_;
}

void LimitCycleDetector::reset() {
  seen_.clear();
  found_.reset();
}

std::vector<std::pair<std::uint64_t, std::size_t>> LimitCycleDetector::entries()
    const {
  std::vector<std::pair<std::uint64_t, std::size_t>> out(seen_.begin(),
                                                         seen_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void LimitCycleDetector::restore(
    const std::vector<std::pair<std::uint64_t, std::size_t>>& entries,
    std::optional<CycleInfo> found) {
  seen_.clear();
  seen_.reserve(entries.size());
  for (const auto& [hash, t] : entries) seen_.emplace(hash, t);
  found_ = found;
}

}  // namespace h3dfact::resonator
