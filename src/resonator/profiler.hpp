#pragma once
// Per-phase op counting and wall-clock profiling of the factorization loop.
// Regenerates the characterization behind Fig. 1c (MVM ≈ 80 % of compute).

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace h3dfact::resonator {

/// The computational phases of one resonator iteration (Fig. 1b/1c).
enum class Phase : int {
  kUnbind = 0,      ///< s ⊙ x̂ ⊙ ... (XNOR tier-1)
  kSimilarity = 1,  ///< a = Xᵀu  (RRAM tier-3 MVM)
  kChannel = 2,     ///< noise/ADC on the similarity path
  kProjection = 3,  ///< y = X a  (RRAM tier-2 MVM)
  kActivation = 4,  ///< sign()
  kDecode = 5,      ///< argmax decode + convergence check
};
inline constexpr int kNumPhases = 6;

/// Name of a phase for reports.
const char* phase_name(Phase p);

/// Accumulated wall time and element-operation counts per phase.
class PhaseProfiler {
 public:
  /// RAII scope that attributes elapsed time to a phase.
  class Scope {
   public:
    Scope(PhaseProfiler* profiler, Phase phase);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseProfiler* profiler_;
    Phase phase_;
    std::chrono::steady_clock::time_point start_;
  };

  void add_time(Phase p, std::uint64_t ns) { ns_[static_cast<int>(p)] += ns; }
  void add_ops(Phase p, std::uint64_t ops) { ops_[static_cast<int>(p)] += ops; }

  [[nodiscard]] std::uint64_t time_ns(Phase p) const { return ns_[static_cast<int>(p)]; }
  [[nodiscard]] std::uint64_t ops(Phase p) const { return ops_[static_cast<int>(p)]; }
  [[nodiscard]] std::uint64_t total_ns() const;
  [[nodiscard]] std::uint64_t total_ops() const;

  /// Fraction of total wall time spent in phase p (0 if nothing recorded).
  [[nodiscard]] double time_fraction(Phase p) const;
  /// Fraction of total element-ops in phase p.
  [[nodiscard]] double ops_fraction(Phase p) const;
  /// Combined MVM share (similarity + projection), the Fig. 1c headline.
  [[nodiscard]] double mvm_time_fraction() const;
  [[nodiscard]] double mvm_ops_fraction() const;

  void reset();
  void merge(const PhaseProfiler& other);

 private:
  std::array<std::uint64_t, kNumPhases> ns_{};
  std::array<std::uint64_t, kNumPhases> ops_{};
};

}  // namespace h3dfact::resonator
