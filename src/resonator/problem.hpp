#pragma once
// Factorization problem instances (Sec. II-B): given a product vector
// s = x_1 ⊙ ... ⊙ x_F and the F codebooks, recover the factor indices.

#include <memory>
#include <vector>

#include "hdc/codebook.hpp"
#include "util/rng.hpp"

namespace h3dfact::resonator {

/// A single factorization instance over a shared codebook set.
struct FactorizationProblem {
  std::shared_ptr<const hdc::CodebookSet> codebooks;
  std::vector<std::size_t> ground_truth;  ///< index per factor
  hdc::BipolarVector query;               ///< product vector (possibly noisy)
  double query_noise = 0.0;               ///< element flip probability applied

  [[nodiscard]] std::size_t dim() const { return codebooks->dim(); }
  [[nodiscard]] std::size_t factors() const { return codebooks->factors(); }

  /// True iff `indices` matches the ground truth exactly.
  [[nodiscard]] bool is_correct(const std::vector<std::size_t>& indices) const {
    return indices == ground_truth;
  }
};

/// Generator of random problem instances over one codebook set.
class ProblemGenerator {
 public:
  /// Create a fresh codebook set: F codebooks of M vectors, dimension D.
  ProblemGenerator(std::size_t dim, std::size_t factors, std::size_t codebook_size,
                   util::Rng& rng);

  /// Wrap an existing codebook set.
  explicit ProblemGenerator(std::shared_ptr<const hdc::CodebookSet> set);

  [[nodiscard]] const hdc::CodebookSet& codebooks() const { return *set_; }
  [[nodiscard]] std::shared_ptr<const hdc::CodebookSet> codebooks_ptr() const {
    return set_;
  }

  /// Random instance with a clean query.
  [[nodiscard]] FactorizationProblem sample(util::Rng& rng) const;

  /// Random instance whose query has each element flipped with prob p
  /// (models an approximate product vector from a perceptual frontend).
  [[nodiscard]] FactorizationProblem sample_noisy(double flip_prob,
                                                  util::Rng& rng) const;

  /// Instance with explicit ground-truth indices (clean query).
  [[nodiscard]] FactorizationProblem make(const std::vector<std::size_t>& indices) const;

 private:
  std::shared_ptr<const hdc::CodebookSet> set_;
};

}  // namespace h3dfact::resonator
