#pragma once
// Mid-solve resonator state: everything ResonatorNetwork::resume() needs to
// continue a run bit-identically from iteration `iteration + 1`, the way
// sweeps already resume per cell from JSON checkpoints. src/io/ serializes
// this struct as the kResonatorState artifact section.
//
// The snapshot deliberately does NOT carry the codebooks (they are large and
// already serializable on their own): it carries their fingerprint, and
// resume() refuses a snapshot whose fingerprint does not match the network's
// codebook set. Likewise `options_digest` pins the dynamics configuration —
// resuming under different update rules would silently diverge.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "hdc/hypervector.hpp"
#include "resonator/limit_cycle.hpp"
#include "util/rng.hpp"

namespace h3dfact::resonator {

struct ResonatorOptions;

/// Complete mid-solve state of one ResonatorNetwork::run invocation.
struct ResonatorSnapshot {
  /// Iterations completed when the snapshot was taken; resume continues at
  /// `iteration + 1` with absolute iteration numbering, so an interrupted +
  /// resumed run reports the same ResonatorResult::iterations as an
  /// uninterrupted one.
  std::uint64_t iteration = 0;

  // The problem instance (minus the shared codebooks).
  hdc::BipolarVector query;
  std::vector<std::size_t> ground_truth;  ///< empty = unknown
  double query_noise = 0.0;
  bool ground_truth_known = false;

  // Loop state.
  std::vector<hdc::BipolarVector> estimates;  ///< x̂_f at `iteration`
  std::vector<std::size_t> decoded;           ///< last per-factor argmax
  std::vector<char> correct_trace;            ///< opt-in trace so far

  /// Full generator state at the snapshot point: restoring it replays the
  /// exact tie-break / channel-noise stream of the uninterrupted run.
  util::RngState rng;

  // Limit-cycle detector state (sorted by hash: byte-deterministic).
  std::vector<std::pair<std::uint64_t, std::size_t>> cycle_seen;
  std::optional<CycleInfo> cycle_found;

  // Compatibility pins.
  std::uint64_t codebook_fingerprint = 0;  ///< hdc::set_fingerprint of the set
  std::uint64_t options_digest = 0;        ///< options_fingerprint() of the run
};

/// Digest of the dynamics-relevant ResonatorOptions fields (profiler and the
/// channel's internal parameters excluded; channel presence/determinism
/// included). Snapshots resume only under an options set with equal digest.
std::uint64_t options_fingerprint(const ResonatorOptions& options);

/// Periodic snapshot capture: every `every` completed iterations (0 = never)
/// the run hands a fresh snapshot to `sink`. The sink owns the snapshot and
/// may serialize it (io::add_resonator_snapshot) or keep it in memory.
struct SnapshotPolicy {
  std::size_t every = 0;
  /// Plain function-pointer-with-context form (kept trivially copyable so
  /// the hot loop pays one branch when disabled).
  void (*sink)(const ResonatorSnapshot&, void* ctx) = nullptr;
  void* ctx = nullptr;

  [[nodiscard]] bool enabled() const { return every != 0 && sink != nullptr; }
};

}  // namespace h3dfact::resonator
