#pragma once
// Batched factorization front-end: drives many concurrent
// FactorizationProblems through ONE MvmEngine in lockstep, so every
// similarity/projection MVM is issued as a single batched engine pass per
// factor instead of one engine call per problem. This amortizes codebook
// traversal (ExactMvmEngine's blocked XOR+popcount tiles) and macro passes
// (CimMvmEngine) across the batch — the hot path of every figure/table
// bench sweep.
//
// Both update schedules batch: problems are mutually independent, so at
// step (iteration t, factor f) the MVMs of all problems are issuable as one
// engine pass regardless of schedule. kSynchronous reads every factor
// against the previous iteration's snapshot; kAsynchronous reads the
// freshest per-problem state, exactly like a standalone run. On an engine
// without per-call randomness (ExactMvmEngine) each problem's trajectory is
// bit-for-bit identical to running ResonatorNetwork::run in the same update
// mode with the same per-problem RNG — which is what lets run_trials and
// the sweep runner drive their trial blocks through this front-end without
// changing a single reported statistic.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "resonator/resonator.hpp"

namespace h3dfact::resonator {

/// Runs a batch of factorization problems (sharing one codebook set) in
/// lockstep through a single MVM engine. Problems retire from the batch as
/// they solve / cycle / hit the cap, so a long-tail problem never pays for
/// finished neighbours.
class BatchedFactorizer {
 public:
  /// Software-exact engine over the given codebooks.
  BatchedFactorizer(std::shared_ptr<const hdc::CodebookSet> set,
                    ResonatorOptions options);

  /// Custom MVM engine (e.g. the modelled H3DFact chip).
  BatchedFactorizer(std::shared_ptr<const hdc::CodebookSet> set,
                    std::shared_ptr<MvmEngine> engine,
                    ResonatorOptions options);

  /// Options after construction (the update mode is honored as given).
  [[nodiscard]] const ResonatorOptions& options() const { return options_; }
  [[nodiscard]] const hdc::CodebookSet& codebooks() const { return *set_; }

  /// Factorize `problems` concurrently. `rngs` holds one generator per
  /// problem driving that problem's stochastic elements (initial state,
  /// similarity channel, sign tie-breaks) — seeding rngs[b] like a
  /// standalone run reproduces that run exactly on a deterministic engine.
  /// `device_rng` drives engine-level randomness (CIM device noise).
  [[nodiscard]] std::vector<ResonatorResult> run(
      std::span<const FactorizationProblem> problems,
      std::span<util::Rng> rngs, util::Rng& device_rng) const;

  /// Convenience: derive the per-problem and device generators from `seed`
  /// (per-problem streams match run_trials' per-trial derivation).
  [[nodiscard]] std::vector<ResonatorResult> run(
      std::span<const FactorizationProblem> problems,
      std::uint64_t seed) const;

 private:
  std::shared_ptr<const hdc::CodebookSet> set_;
  std::shared_ptr<MvmEngine> engine_;
  ResonatorOptions options_;
};

}  // namespace h3dfact::resonator
