#include "device/sense_path.hpp"

#include <algorithm>
#include <stdexcept>

namespace h3dfact::device {

SensePath::SensePath(const SensePathParams& params, util::Rng& rng)
    : params_(params) {
  if (params.rsense_kohm <= 0.0) {
    throw std::invalid_argument("Rsense must be positive");
  }
  if (params.vtgt_V <= 0.0 || params.vtgt_V > params.vsense_max_V) {
    throw std::invalid_argument("VTGT outside sensing headroom");
  }
  gain_ = 1.0 + rng.gaussian(0.0, params.pvt_gain_sigma);
}

double SensePath::sense_V(double current_uA) const {
  // V = I * Rsense, with the per-instance residual gain; clipped to the
  // available headroom on either polarity.
  const double v = current_uA * 1e-6 * params_.rsense_kohm * 1e3 * gain_;
  return std::clamp(v, -params_.vsense_max_V, params_.vsense_max_V);
}

double SensePath::vtgt_current_uA() const {
  return params_.vtgt_V / (params_.rsense_kohm * 1e3 * gain_) * 1e6;
}

void SensePath::retune_vtgt(double vtgt_V) {
  params_.vtgt_V = std::clamp(vtgt_V, 0.01, params_.vsense_max_V);
}

}  // namespace h3dfact::device
