#include "device/rram_chip_data.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/stats.hpp"

namespace h3dfact::device {

TestchipNoiseModel::TestchipNoiseModel(std::size_t rows, const RramParams& p,
                                       std::size_t samples, util::Rng& rng)
    : rows_(rows) {
  if (rows == 0 || samples == 0) {
    throw std::invalid_argument("testchip model needs rows and samples");
  }
  // Characterize a set of nominal levels spanning the signed dot range.
  // A column computing a bipolar dot product of value v has (rows+v)/2
  // matching (on) differential contributions and (rows-v)/2 opposing ones.
  std::vector<int> levels;
  const int r = static_cast<int>(rows);
  for (int frac = -4; frac <= 4; ++frac) {
    int v = frac * r / 4;
    if ((r + v) % 2 != 0) v += 1;  // keep the cell split integral
    levels.push_back(std::clamp(v, -r, r));
  }
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());

  const double delta_uS = p.g_on_uS - p.g_off_uS;
  for (int v : levels) {
    const std::size_t pos = static_cast<std::size_t>((r + v) / 2);
    util::RunningStats st;
    // Program a fresh differential column per batch of reads: programming
    // variation is per-device, read noise per access — both aggregated, as
    // in the silicon measurement.
    std::vector<RramCell> plus_cells(rows, RramCell(p));
    std::vector<RramCell> minus_cells(rows, RramCell(p));
    for (std::size_t i = 0; i < rows; ++i) {
      const bool match = i < pos;  // +1 contribution cells first
      plus_cells[i].program(match, rng);
      minus_cells[i].program(!match, rng);
    }
    for (std::size_t s = 0; s < samples; ++s) {
      double ip = 0.0, im = 0.0;
      for (std::size_t i = 0; i < rows; ++i) {
        ip += plus_cells[i].read_uS(rng);
        im += minus_cells[i].read_uS(rng);
      }
      // Normalize the differential conductance back to match-count units.
      st.add((ip - im) / delta_uS);
    }
    table_.push_back(ReadoutStat{v, st.mean(), st.stddev()});
  }
  std::sort(table_.begin(), table_.end(),
            [](const ReadoutStat& a, const ReadoutStat& b) { return a.level < b.level; });
}

namespace {
double interp(const std::vector<ReadoutStat>& t, int level, bool want_sigma) {
  if (t.empty()) throw std::logic_error("empty testchip table");
  auto val = [&](const ReadoutStat& s) { return want_sigma ? s.sigma : s.mean; };
  if (level <= t.front().level) return val(t.front());
  if (level >= t.back().level) return val(t.back());
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (level <= t[i].level) {
      const double x0 = t[i - 1].level, x1 = t[i].level;
      const double y0 = val(t[i - 1]), y1 = val(t[i]);
      const double w = (level - x0) / (x1 - x0);
      return y0 * (1.0 - w) + y1 * w;
    }
  }
  return val(t.back());
}
}  // namespace

double TestchipNoiseModel::mean_at(int level) const {
  return interp(table_, level, /*want_sigma=*/false);
}

double TestchipNoiseModel::sigma_at(int level) const {
  return interp(table_, level, /*want_sigma=*/true);
}

double TestchipNoiseModel::aggregate_sigma() const {
  double s = 0.0;
  for (const auto& row : table_) s += row.sigma;
  return s / static_cast<double>(table_.size());
}

double TestchipNoiseModel::gain() const {
  const auto& lo = table_.front();
  const auto& hi = table_.back();
  if (hi.level == lo.level) return 1.0;
  return (hi.mean - lo.mean) / static_cast<double>(hi.level - lo.level);
}

}  // namespace h3dfact::device
