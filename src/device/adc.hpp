#pragma once
// SAR ADC model (Sec. IV-B): each RRAM column output is digitized by a 4-bit
// SAR ADC in tier-1. Captures the transfer function (offset/gain error +
// quantization) and the PPA characteristics used by the hardware reports.

#include <cstdint>

#include "device/tech_node.hpp"
#include "util/rng.hpp"

namespace h3dfact::device {

/// Static configuration of one SAR ADC instance.
struct AdcParams {
  int bits = 4;
  double full_scale_uA = 40.0;  ///< differential input current at full scale
  double offset_sigma_frac = 0.01;  ///< per-instance offset, fraction of FS
  double gain_sigma_frac = 0.01;    ///< per-instance gain error sigma
  Node node = Node::k16nm;
};

/// One SAR ADC instance with calibrated-at-instantiation offset/gain error.
class SarAdc {
 public:
  /// Instance-level mismatch is drawn once at construction (per-die spread).
  SarAdc(const AdcParams& params, util::Rng& rng);

  [[nodiscard]] int bits() const { return params_.bits; }
  [[nodiscard]] int max_code() const { return (1 << (params_.bits - 1)) - 1; }

  /// Convert a (signed, differential) input current to a signed code in
  /// [−max_code, max_code].
  [[nodiscard]] int convert(double input_uA) const;

  /// Conversion energy per sample (pJ). Scales ~2^bits for SAR CDACs and
  /// with the node's switching energy.
  [[nodiscard]] double energy_pJ() const;

  /// Conversion latency in clock cycles (one bit decision per cycle + sample).
  [[nodiscard]] std::uint32_t latency_cycles() const;

  /// Layout area (µm²), node-scaled.
  [[nodiscard]] double area_um2() const;

  [[nodiscard]] double offset_uA() const { return offset_uA_; }
  [[nodiscard]] double gain() const { return gain_; }

 private:
  AdcParams params_;
  double offset_uA_;
  double gain_;
};

}  // namespace h3dfact::device
