#include "device/pcm_cell.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/stats.hpp"

namespace h3dfact::device {

PcmParams default_pcm() { return PcmParams{}; }

void PcmCell::program(bool on, util::Rng& rng) {
  on_ = on;
  const double mean = on ? params_->g_on_uS : params_->g_off_uS;
  const double s = params_->prog_sigma;
  g_prog_uS_ = mean * rng.lognormal(-0.5 * s * s, s);
  // Crystalline SET states are stable; amorphous RESET states drift.
  nu_ = on ? 0.0
           : std::max(0.0, rng.gaussian(params_->drift_nu_mean,
                                        params_->drift_nu_sigma));
  write_energy_pJ_ += on ? params_->set_energy_pJ : params_->reset_energy_pJ;
}

double PcmCell::conductance_uS(double t_since_prog_s) const {
  const double t = std::max(t_since_prog_s, params_->drift_t0_s);
  return g_prog_uS_ * std::pow(t / params_->drift_t0_s, -nu_);
}

double PcmCell::read_uS(double t_since_prog_s, util::Rng& rng) const {
  const double sigma = params_->read_noise_frac * params_->g_on_uS;
  return std::max(0.0, conductance_uS(t_since_prog_s) + rng.gaussian(0.0, sigma));
}

PcmPathStats pcm_path_stats(const PcmParams& params, std::size_t rows,
                            double t_since_prog_s, std::size_t samples,
                            util::Rng& rng) {
  // Measure a differential column programmed to the full-scale level
  // (all-matching), exactly like the RRAM testchip campaign.
  std::vector<PcmCell> plus(rows, PcmCell(params));
  std::vector<PcmCell> minus(rows, PcmCell(params));
  for (std::size_t i = 0; i < rows; ++i) {
    plus[i].program(true, rng);
    minus[i].program(false, rng);
  }
  const double delta = params.g_on_uS - params.g_off_uS;
  util::RunningStats st;
  for (std::size_t s = 0; s < samples; ++s) {
    double acc = 0.0;
    for (std::size_t i = 0; i < rows; ++i) {
      acc += plus[i].read_uS(t_since_prog_s, rng) -
             minus[i].read_uS(t_since_prog_s, rng);
    }
    st.add(acc / delta);
  }
  PcmPathStats out;
  out.gain = st.mean() / static_cast<double>(rows);
  out.sigma = st.stddev();
  return out;
}

}  // namespace h3dfact::device
