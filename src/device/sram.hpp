#pragma once
// SRAM array model (Sec. III-B / IV-A): tier-1 near-memory buffers that hold
// ADC outputs for batch factorization, plus the SRAM-CIM arrays of the 2D
// fully-digital baseline. Tracks capacity/occupancy and access energy.

#include <cstdint>
#include <stdexcept>

#include "device/tech_node.hpp"

namespace h3dfact::device {

/// Static configuration of an SRAM macro.
struct SramParams {
  std::size_t words = 4096;
  std::size_t word_bits = 32;
  Node node = Node::k16nm;
};

/// Behavioural + PPA model of one SRAM macro used as a near-memory buffer.
class SramBuffer {
 public:
  explicit SramBuffer(const SramParams& params);

  [[nodiscard]] std::size_t capacity_bits() const {
    return params_.words * params_.word_bits;
  }
  [[nodiscard]] std::size_t used_bits() const { return used_bits_; }
  [[nodiscard]] std::size_t free_bits() const { return capacity_bits() - used_bits_; }
  [[nodiscard]] double occupancy() const {
    return static_cast<double>(used_bits_) / static_cast<double>(capacity_bits());
  }

  /// Reserve space for `bits`; throws if the buffer would overflow — the
  /// scheduler must size batches against this (Sec. IV-A).
  void allocate(std::size_t bits);

  /// Release previously allocated bits.
  void release(std::size_t bits);

  /// Account one read / write of `bits` and return its energy (pJ).
  double access(std::size_t bits, bool write);

  [[nodiscard]] double total_access_energy_pJ() const { return energy_pJ_; }
  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }

  /// Macro area (mm²) from bitcell area + ~30 % periphery overhead.
  [[nodiscard]] double area_mm2() const;

  /// Energy per bit accessed (pJ), node-scaled.
  [[nodiscard]] double energy_per_bit_pJ(bool write) const;

  void reset_counters();

 private:
  SramParams params_;
  std::size_t used_bits_ = 0;
  double energy_pJ_ = 0.0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace h3dfact::device
