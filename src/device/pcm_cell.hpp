#pragma once
// Phase-change-memory (PCM) device model — the technology of the in-memory
// factorizer the paper compares against (Langenegger et al. [15], Sec. V-B).
//
// PCM differs from RRAM in two algorithm-relevant ways:
//   1. conductance drift: G(t) = G_prog · (t/t0)^(−ν) with a device-specific
//      drift exponent ν (amorphous-phase structural relaxation), and
//   2. larger programming spread (analog RESET distributions).
// Both the drift-induced gain decay and the 1/f-flavoured read noise end up
// as extra stochasticity on the similarity path — which is exactly why [15]
// could exploit PCM for factorization. This model lets the benches compare
// RRAM-statistics vs PCM-statistics factorization on equal footing.

#include "util/rng.hpp"

namespace h3dfact::device {

/// PCM technology parameters (mushroom-cell class, values consistent with
/// the published characteristics of the devices used in [15]).
struct PcmParams {
  double g_on_uS = 20.0;        ///< SET (crystalline) conductance
  double g_off_uS = 0.4;        ///< RESET (amorphous) conductance
  double prog_sigma = 0.15;     ///< lognormal programming spread
  double read_noise_frac = 0.05;///< per-read sigma / G_on
  double drift_nu_mean = 0.05;  ///< drift exponent ν for RESET states
  double drift_nu_sigma = 0.01; ///< device-to-device ν spread
  double drift_t0_s = 1.0;      ///< drift reference time
  double v_read = 0.2;          ///< read voltage (V)
  double set_energy_pJ = 15.0;  ///< crystallization pulse
  double reset_energy_pJ = 30.0;///< melt-quench pulse
};

PcmParams default_pcm();

/// One PCM cell with programming spread, drift and read noise.
class PcmCell {
 public:
  explicit PcmCell(const PcmParams& params) : params_(&params) {}

  /// Program to SET (on) or RESET (off); draws the programmed level and the
  /// device's drift exponent.
  void program(bool on, util::Rng& rng);

  [[nodiscard]] bool is_on() const { return on_; }

  /// Conductance after `t_since_prog_s` seconds of drift (no read noise).
  [[nodiscard]] double conductance_uS(double t_since_prog_s) const;

  /// One noisy read at time `t_since_prog_s` after programming.
  [[nodiscard]] double read_uS(double t_since_prog_s, util::Rng& rng) const;

  /// The drawn drift exponent of this device (0 for SET states, which are
  /// crystalline and drift negligibly).
  [[nodiscard]] double drift_nu() const { return nu_; }

  [[nodiscard]] double write_energy_pJ() const { return write_energy_pJ_; }

 private:
  const PcmParams* params_;
  bool on_ = false;
  double g_prog_uS_ = 0.0;
  double nu_ = 0.0;
  double write_energy_pJ_ = 0.0;
};

/// Aggregate similarity-path statistics of a d-row PCM column at read time
/// t, comparable to TestchipNoiseModel::aggregate_sigma() for RRAM: used by
/// the device-comparison ablation to drive the stochastic factorizer with
/// PCM statistics.
struct PcmPathStats {
  double gain = 1.0;    ///< drift-induced signal attenuation
  double sigma = 0.0;   ///< similarity-count noise sigma
};
PcmPathStats pcm_path_stats(const PcmParams& params, std::size_t rows,
                            double t_since_prog_s, std::size_t samples,
                            util::Rng& rng);

}  // namespace h3dfact::device
