#include "device/adc.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace h3dfact::device {

SarAdc::SarAdc(const AdcParams& params, util::Rng& rng) : params_(params) {
  if (params.bits < 1 || params.bits > 12) {
    throw std::invalid_argument("SAR ADC bits out of supported range");
  }
  if (params.full_scale_uA <= 0.0) {
    throw std::invalid_argument("ADC full scale must be positive");
  }
  offset_uA_ = rng.gaussian(0.0, params.offset_sigma_frac * params.full_scale_uA);
  gain_ = 1.0 + rng.gaussian(0.0, params.gain_sigma_frac);
}

int SarAdc::convert(double input_uA) const {
  const double corrected = gain_ * input_uA + offset_uA_;
  const double step = params_.full_scale_uA / static_cast<double>(max_code());
  const double code = std::round(corrected / step);
  return static_cast<int>(std::clamp<double>(code, -max_code(), max_code()));
}

double SarAdc::energy_pJ() const {
  // SAR energy ≈ CDAC + comparator per decided bit; base value calibrated to
  // published 4-bit SAR designs at 16 nm (~0.05 pJ/conv), quadrupling per
  // +2 bits through the capacitive DAC.
  const double base_16nm_4bit = 0.05;
  const double bit_scale = std::pow(2.0, (params_.bits - 4));
  const double node_scale =
      tech(params_.node).energy_per_gate_rel / tech(Node::k16nm).energy_per_gate_rel;
  return base_16nm_4bit * bit_scale * node_scale;
}

std::uint32_t SarAdc::latency_cycles() const {
  return static_cast<std::uint32_t>(params_.bits) + 1;  // sample + bit cycles
}

double SarAdc::area_um2() const {
  // CDAC area doubles per bit; comparator/logic roughly constant.
  const double base_16nm_4bit = 60.0;  // µm², calibrated to NeuroSim-style data
  const double bit_scale = std::pow(2.0, (params_.bits - 4));
  const double node_scale =
      tech(Node::k16nm).logic_density_rel / tech(params_.node).logic_density_rel;
  return base_16nm_4bit * bit_scale * node_scale;
}

}  // namespace h3dfact::device
