#pragma once
// Column sensing path (Fig. 2a): voltage regulation (op-amp + PMOS from
// AVDD), current-sense resistor Rsense for PVT immunity, and the VTGT target
// sensing voltage the testchip can retune (Sec. V-D).

#include "util/rng.hpp"

namespace h3dfact::device {

/// Electrical configuration of one column sensing path.
struct SensePathParams {
  double rsense_kohm = 10.0;   ///< current-sense resistor
  double vtgt_V = 0.45;        ///< target sensing voltage (tunable, Fig. 2)
  double vsense_max_V = 0.8;   ///< sensing headroom (Fig. 2a plot x-range)
  double pvt_gain_sigma = 0.02;///< residual gain spread after Rsense compensation
  double avdd_V = 1.1;         ///< analog supply
};

/// Converts a column current into the voltage the ADC samples, including
/// PVT-residual gain spread (drawn per-instance) and headroom clipping.
class SensePath {
 public:
  SensePath(const SensePathParams& params, util::Rng& rng);

  /// Voltage seen at the ADC input for a signed differential current (µA).
  [[nodiscard]] double sense_V(double current_uA) const;

  /// The current (µA) that maps exactly to VTGT — used to retune thresholds
  /// when noise statistics change (testchip validation, Fig. 6b).
  [[nodiscard]] double vtgt_current_uA() const;

  /// Set a new target sensing voltage (clamped to the headroom).
  void retune_vtgt(double vtgt_V);

  [[nodiscard]] const SensePathParams& params() const { return params_; }

 private:
  SensePathParams params_;
  double gain_;  ///< per-instance transimpedance gain factor
};

}  // namespace h3dfact::device
