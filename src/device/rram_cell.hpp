#pragma once
// Behavioural RRAM device model (Sec. III-A).
//
// A cell stores a conductance in {G_off, G_on} (binary CIM per [25]). The
// model captures the three stochastic effects the paper's factorizer
// exploits (Sec. III-C):
//   1. programming variation  — lognormal spread of the programmed level,
//   2. read noise             — Gaussian current noise on every read-out,
//   3. temperature dependence — retention degradation above ~100 °C [33].

#include <cstdint>

#include "util/rng.hpp"

namespace h3dfact::device {

/// Programming / read-out statistical parameters of one RRAM technology.
struct RramParams {
  double g_on_uS = 50.0;        ///< mean low-resistance-state conductance (µS)
  double g_off_uS = 2.0;        ///< mean high-resistance-state conductance (µS)
  double prog_sigma = 0.08;     ///< lognormal sigma of programming variation
  double read_noise_frac = 0.03;///< per-read Gaussian sigma / G_on
  double v_read = 0.2;          ///< read voltage (V)
  double v_set = 2.5;           ///< SET programming voltage (V)
  double v_reset = 2.8;         ///< RESET programming voltage (V)
  double set_energy_pJ = 5.0;   ///< energy per SET pulse
  double reset_energy_pJ = 7.0; ///< energy per RESET pulse
  double retention_T_C = 100.0; ///< retention degrades beyond this temp [33]
};

/// Default parameters matched to the 40 nm testchip macro of [25]
/// (G_on/G_off ratio ≈ 25, programming σ ≈ 8 %).
RramParams default_rram_40nm();

/// One binary RRAM cell.
class RramCell {
 public:
  // Params are stored by value: cells must stay valid past any temporary
  // they were configured from (caught by ASan as a stack-use-after-scope).
  explicit RramCell(const RramParams& params) : params_(params) {}

  /// Program to the low-resistance (on) or high-resistance (off) state.
  /// Draws a device-specific level from the programming distribution and
  /// accounts for the write energy.
  void program(bool on, util::Rng& rng);

  /// True if programmed to the low-resistance state.
  [[nodiscard]] bool is_on() const { return on_; }

  /// The programmed (static) conductance in µS.
  [[nodiscard]] double conductance_uS() const { return g_uS_; }

  /// One noisy read: programmed conductance plus fresh read noise, scaled by
  /// the retention factor at `temperature_C`.
  [[nodiscard]] double read_uS(util::Rng& rng, double temperature_C = 25.0) const;

  /// Read current (µA) at the configured read voltage.
  [[nodiscard]] double read_current_uA(util::Rng& rng,
                                       double temperature_C = 25.0) const;

  /// Accumulated programming energy (pJ) over the cell's lifetime.
  [[nodiscard]] double write_energy_pJ() const { return write_energy_pJ_; }

  /// Multiplicative retention degradation factor at temperature T:
  /// 1.0 below the retention knee, decaying on-state conductance above it.
  [[nodiscard]] static double retention_factor(const RramParams& p,
                                               double temperature_C);

 private:
  RramParams params_;
  bool on_ = false;
  double g_uS_ = 0.0;
  double write_energy_pJ_ = 0.0;
};

}  // namespace h3dfact::device
