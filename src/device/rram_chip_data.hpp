#pragma once
// "Testchip-extracted" RRAM noise statistics (Sec. V-D, Fig. 6b).
//
// The paper extracts inherent noise parameters from fabricated 40 nm RRAM
// testchips [22],[25] by measuring the readout signal, then injects those
// statistics into the factorization framework. We cannot measure silicon
// here, so this module embeds a parametric reconstruction of such a
// measurement campaign: per-conductance-level readout statistics (mean shift
// and sigma) on a normalized scale, plus the aggregate similarity-path noise
// they imply for a d-row column. The numbers are chosen to be consistent
// with the macro-level figures reported for the referenced testchips
// (G_on/G_off ≈ 25, >75 % sensing dynamic range use, ~3 % read sigma).

#include <cstddef>
#include <vector>

#include "device/rram_cell.hpp"

namespace h3dfact::device {

/// One row of the measured-statistics table: readout of a column whose
/// nominal (noise-free) bipolar dot-product value is `level` out of `rows`.
struct ReadoutStat {
  int level;        ///< nominal signed match count
  double mean;      ///< measured mean (same units as level)
  double sigma;     ///< measured standard deviation
};

/// Reconstructed measurement campaign over a d-row column.
class TestchipNoiseModel {
 public:
  /// Build the statistics table for a column of `rows` cells using the cell
  /// parameters `p`, by Monte-Carlo "measurement" with `samples` reads per
  /// level — this mirrors how the paper characterizes the silicon.
  TestchipNoiseModel(std::size_t rows, const RramParams& p, std::size_t samples,
                     util::Rng& rng);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] const std::vector<ReadoutStat>& table() const { return table_; }

  /// Interpolated mean readout for a nominal level.
  [[nodiscard]] double mean_at(int level) const;

  /// Interpolated readout sigma for a nominal level.
  [[nodiscard]] double sigma_at(int level) const;

  /// Aggregate similarity-path sigma (levels-averaged), the single number the
  /// stochastic factorizer consumes when it injects testchip statistics.
  [[nodiscard]] double aggregate_sigma() const;

  /// Gain of the readout (d(mean)/d(level)); ideal readout has gain 1.
  [[nodiscard]] double gain() const;

  /// Suggested VTGT scale retune factor: compensates the measured gain so
  /// the decision thresholds sit at the same relative position (Sec. V-D).
  [[nodiscard]] double vtgt_retune_factor() const { return 1.0 / gain(); }

 private:
  std::size_t rows_;
  std::vector<ReadoutStat> table_;
};

}  // namespace h3dfact::device
