#include "device/tech_node.hpp"

#include <stdexcept>
#include <string>

namespace h3dfact::device {

namespace {
// 40 nm: RRAM-capable legacy node (the paper's fabricated testchip node [25]).
constexpr TechParams k40{
    Node::k40nm,
    40.0,
    1.1,
    1.0,    // density reference
    1.0,    // energy reference
    0.299,  // µm² 6T bitcell at 40 nm (foundry-typical)
    1.0,
};

// 16 nm: advanced digital node for peripherals/SRAM/logic (Sec. III-B).
// Density and energy scaling consistent with published foundry ratios.
constexpr TechParams k16{
    Node::k16nm,
    16.0,
    0.8,
    4.9,    // ~4.9x logic density vs 40 nm
    0.30,   // ~3.3x lower switching energy vs 40 nm
    0.074,  // µm² 6T bitcell at 16 nm
    0.0,    // no embedded RRAM at 16 nm (motivates the H3D split)
};
}  // namespace

const TechParams& tech(Node node) {
  switch (node) {
    case Node::k40nm: return k40;
    case Node::k16nm: return k16;
  }
  throw std::invalid_argument("unknown node");
}

std::string node_name(Node node) {
  switch (node) {
    case Node::k40nm: return "40 nm";
    case Node::k16nm: return "16 nm";
  }
  return "?";
}

}  // namespace h3dfact::device
