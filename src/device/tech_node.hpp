#pragma once
// Technology-node parameters for the hybrid design (Sec. III): RRAM tiers in
// a legacy 40 nm node (needed for the high programming voltages), digital
// components in an advanced 16 nm node.

#include <string>

namespace h3dfact::device {

/// Process node identifier used across PPA models.
enum class Node { k40nm, k16nm };

/// Per-node electrical/layout constants. Logic-density and energy scaling
/// factors follow standard node-to-node scaling used by NeuroSim-style
/// estimators; absolute values are calibrated in ppa/calib.hpp.
struct TechParams {
  Node node;
  double feature_nm;          ///< drawn feature size
  double vdd;                 ///< nominal core supply (V)
  double logic_density_rel;   ///< gate density relative to 40 nm
  double energy_per_gate_rel; ///< switching energy relative to 40 nm
  double sram_cell_um2;       ///< 6T SRAM bitcell area (µm²)
  double supports_rram;       ///< 1.0 if the node offers embedded RRAM
};

/// Canonical parameter sets for the two nodes used in the paper.
const TechParams& tech(Node node);

/// Human-readable name ("40 nm" / "16 nm").
std::string node_name(Node node);

}  // namespace h3dfact::device
