#include "device/sram.hpp"

#include <stdexcept>
namespace h3dfact::device {

SramBuffer::SramBuffer(const SramParams& params) : params_(params) {
  if (params.words == 0 || params.word_bits == 0) {
    throw std::invalid_argument("SRAM dimensions must be non-zero");
  }
}

void SramBuffer::allocate(std::size_t bits) {
  if (bits > free_bits()) {
    throw std::overflow_error("SRAM buffer overflow: batch exceeds capacity");
  }
  used_bits_ += bits;
}

void SramBuffer::release(std::size_t bits) {
  if (bits > used_bits_) {
    throw std::underflow_error("SRAM buffer release exceeds allocation");
  }
  used_bits_ -= bits;
}

double SramBuffer::energy_per_bit_pJ(bool write) const {
  // ~0.012 pJ/bit read, 0.018 pJ/bit write at 16 nm (small macro, calibrated
  // to NeuroSim-style numbers); scaled by the node switching energy.
  const double base = write ? 0.018 : 0.012;
  const double scale = tech(params_.node).energy_per_gate_rel /
                       tech(Node::k16nm).energy_per_gate_rel;
  return base * scale;
}

double SramBuffer::access(std::size_t bits, bool write) {
  const double e = energy_per_bit_pJ(write) * static_cast<double>(bits);
  energy_pJ_ += e;
  if (write) {
    ++writes_;
  } else {
    ++reads_;
  }
  return e;
}

double SramBuffer::area_mm2() const {
  const double cell_um2 = tech(params_.node).sram_cell_um2;
  const double cells = static_cast<double>(capacity_bits());
  const double periphery = 1.30;  // decoder/sense-amp overhead
  return cells * cell_um2 * periphery * 1e-6;
}

void SramBuffer::reset_counters() {
  energy_pJ_ = 0.0;
  reads_ = 0;
  writes_ = 0;
}

}  // namespace h3dfact::device
