#include "device/rram_cell.hpp"

#include <algorithm>
#include <cmath>

namespace h3dfact::device {

RramParams default_rram_40nm() { return RramParams{}; }

void RramCell::program(bool on, util::Rng& rng) {
  on_ = on;
  const double mean = on ? params_.g_on_uS : params_.g_off_uS;
  // Lognormal spread around the target level; sigma in log-domain so the
  // level stays positive. E[G] is kept at `mean` by the -sigma^2/2 shift.
  const double s = params_.prog_sigma;
  g_uS_ = mean * rng.lognormal(-0.5 * s * s, s);
  write_energy_pJ_ += on ? params_.set_energy_pJ : params_.reset_energy_pJ;
}

double RramCell::read_uS(util::Rng& rng, double temperature_C) const {
  const double retention = retention_factor(params_, temperature_C);
  const double g = on_ ? g_uS_ * retention : g_uS_;
  const double sigma = params_.read_noise_frac * params_.g_on_uS;
  return std::max(0.0, g + rng.gaussian(0.0, sigma));
}

double RramCell::read_current_uA(util::Rng& rng, double temperature_C) const {
  return read_uS(rng, temperature_C) * params_.v_read;
}

double RramCell::retention_factor(const RramParams& p, double temperature_C) {
  if (temperature_C <= p.retention_T_C) return 1.0;
  // On-state conductance drifts down ~1%/°C beyond the retention knee [33];
  // clamped so the factor stays physical.
  const double loss = 0.01 * (temperature_C - p.retention_T_C);
  return std::clamp(1.0 - loss, 0.1, 1.0);
}

}  // namespace h3dfact::device
